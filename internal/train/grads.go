// Package train adds supervised training to the TCB transformer: manual
// reverse-mode backpropagation through the full encoder–decoder stack
// (embeddings, positional encoding, multi-head attention with masks,
// layer norm, FFN, output projection) with an Adam optimizer and
// cross-entropy loss under teacher forcing.
//
// The paper serves pre-trained models, so training is out of its scope —
// this package exists so the examples can serve a model that actually
// learned a task (and so the correctness claims hold on non-random
// weights). Gradients are verified against central-difference numerical
// gradients in the tests, which is the strongest check a hand-written
// backward pass can get.
package train

import (
	"tcb/internal/model"
	"tcb/internal/tensor"
)

// linGrad accumulates gradients for one Linear layer.
type linGrad struct {
	W *tensor.Matrix
	B []float32
}

func newLinGrad(l *model.Linear) *linGrad {
	return &linGrad{W: tensor.New(l.W.Rows, l.W.Cols), B: make([]float32, len(l.B))}
}

// lnGrad accumulates gradients for one LayerNorm.
type lnGrad struct {
	Gain, Bias []float32
}

func newLNGrad(l *model.LayerNorm) *lnGrad {
	return &lnGrad{Gain: make([]float32, len(l.Gain)), Bias: make([]float32, len(l.Bias))}
}

// attnGrad accumulates gradients for one attention block.
type attnGrad struct {
	WQ, WK, WV, WO *linGrad
}

func newAttnGrad(a *model.AttentionWeights) *attnGrad {
	return &attnGrad{
		WQ: newLinGrad(a.WQ), WK: newLinGrad(a.WK),
		WV: newLinGrad(a.WV), WO: newLinGrad(a.WO),
	}
}

// encGrad / decGrad mirror the layer weight bundles.
type encGrad struct {
	SelfAttn *attnGrad
	FFNIn    *linGrad
	FFNOut   *linGrad
	Norm1    *lnGrad
	Norm2    *lnGrad
}

type decGrad struct {
	SelfAttn  *attnGrad
	CrossAttn *attnGrad
	FFNIn     *linGrad
	FFNOut    *linGrad
	Norm1     *lnGrad
	Norm2     *lnGrad
	Norm3     *lnGrad
}

// Grads mirrors model.Params with one gradient tensor per weight tensor.
type Grads struct {
	Embedding *tensor.Matrix
	Encoder   []*encGrad
	Decoder   []*decGrad
	OutProj   *linGrad
}

// NewGrads allocates a zeroed gradient mirror of p.
func NewGrads(p *model.Params) *Grads {
	g := &Grads{
		Embedding: tensor.New(p.Embedding.Rows, p.Embedding.Cols),
		OutProj:   newLinGrad(p.OutProj),
	}
	for _, l := range p.Encoder {
		g.Encoder = append(g.Encoder, &encGrad{
			SelfAttn: newAttnGrad(l.SelfAttn),
			FFNIn:    newLinGrad(l.FFN.In),
			FFNOut:   newLinGrad(l.FFN.Out),
			Norm1:    newLNGrad(l.Norm1),
			Norm2:    newLNGrad(l.Norm2),
		})
	}
	for _, l := range p.Decoder {
		g.Decoder = append(g.Decoder, &decGrad{
			SelfAttn:  newAttnGrad(l.SelfAttn),
			CrossAttn: newAttnGrad(l.CrossAttn),
			FFNIn:     newLinGrad(l.FFN.In),
			FFNOut:    newLinGrad(l.FFN.Out),
			Norm1:     newLNGrad(l.Norm1),
			Norm2:     newLNGrad(l.Norm2),
			Norm3:     newLNGrad(l.Norm3),
		})
	}
	return g
}

// Zero clears every gradient in place.
func (g *Grads) Zero() {
	g.Embedding.Zero()
	zeroLin := func(l *linGrad) {
		l.W.Zero()
		for i := range l.B {
			l.B[i] = 0
		}
	}
	zeroLN := func(l *lnGrad) {
		for i := range l.Gain {
			l.Gain[i] = 0
			l.Bias[i] = 0
		}
	}
	zeroAttn := func(a *attnGrad) { zeroLin(a.WQ); zeroLin(a.WK); zeroLin(a.WV); zeroLin(a.WO) }
	for _, l := range g.Encoder {
		zeroAttn(l.SelfAttn)
		zeroLin(l.FFNIn)
		zeroLin(l.FFNOut)
		zeroLN(l.Norm1)
		zeroLN(l.Norm2)
	}
	for _, l := range g.Decoder {
		zeroAttn(l.SelfAttn)
		zeroAttn(l.CrossAttn)
		zeroLin(l.FFNIn)
		zeroLin(l.FFNOut)
		zeroLN(l.Norm1)
		zeroLN(l.Norm2)
		zeroLN(l.Norm3)
	}
	zeroLin(g.OutProj)
}

// visit walks every (weight, gradient) float32 pair of the model, in a
// deterministic order. Used by the optimizer and the gradient checker.
func visit(p *model.Params, g *Grads, fn func(w, gr []float32)) {
	fn(p.Embedding.Data, g.Embedding.Data)
	lin := func(l *model.Linear, gl *linGrad) {
		fn(l.W.Data, gl.W.Data)
		fn(l.B, gl.B)
	}
	ln := func(l *model.LayerNorm, gl *lnGrad) {
		fn(l.Gain, gl.Gain)
		fn(l.Bias, gl.Bias)
	}
	attn := func(a *model.AttentionWeights, ga *attnGrad) {
		lin(a.WQ, ga.WQ)
		lin(a.WK, ga.WK)
		lin(a.WV, ga.WV)
		lin(a.WO, ga.WO)
	}
	for i, l := range p.Encoder {
		gl := g.Encoder[i]
		attn(l.SelfAttn, gl.SelfAttn)
		lin(l.FFN.In, gl.FFNIn)
		lin(l.FFN.Out, gl.FFNOut)
		ln(l.Norm1, gl.Norm1)
		ln(l.Norm2, gl.Norm2)
	}
	for i, l := range p.Decoder {
		gl := g.Decoder[i]
		attn(l.SelfAttn, gl.SelfAttn)
		attn(l.CrossAttn, gl.CrossAttn)
		lin(l.FFN.In, gl.FFNIn)
		lin(l.FFN.Out, gl.FFNOut)
		ln(l.Norm1, gl.Norm1)
		ln(l.Norm2, gl.Norm2)
		ln(l.Norm3, gl.Norm3)
	}
	lin(p.OutProj, g.OutProj)
}
