package train

import (
	"math"

	"tcb/internal/model"
	"tcb/internal/tensor"
)

// linBackward propagates dY through y = xW + b: accumulates gW += xᵀ·dY,
// gB += Σrows dY and returns dX = dY·Wᵀ.
func linBackward(l *model.Linear, g *linGrad, c *linCache, dY *tensor.Matrix) *tensor.Matrix {
	gw := tensor.MatMul(tensor.Transpose(c.x), dY)
	tensor.AddInPlace(g.W, gw)
	for i := 0; i < dY.Rows; i++ {
		row := dY.Row(i)
		for j, v := range row {
			g.B[j] += v
		}
	}
	return tensor.MatMul(dY, tensor.Transpose(l.W))
}

// lnBackward propagates dY through y = x̂·g + b with x̂ = (x−μ)/σ.
func lnBackward(l *model.LayerNorm, g *lnGrad, c *lnCache, dY *tensor.Matrix) *tensor.Matrix {
	n := dY.Cols
	dX := tensor.New(dY.Rows, n)
	for i := 0; i < dY.Rows; i++ {
		dy := dY.Row(i)
		xh := c.xhat.Row(i)
		inv := c.invStd[i]
		var meanDxh, meanDxhXh float32
		dxh := make([]float32, n)
		for j := 0; j < n; j++ {
			g.Bias[j] += dy[j]
			g.Gain[j] += dy[j] * xh[j]
			dxh[j] = dy[j] * l.Gain[j]
			meanDxh += dxh[j]
			meanDxhXh += dxh[j] * xh[j]
		}
		meanDxh /= float32(n)
		meanDxhXh /= float32(n)
		dx := dX.Row(i)
		for j := 0; j < n; j++ {
			dx[j] = inv * (dxh[j] - meanDxh - xh[j]*meanDxhXh)
		}
	}
	return dX
}

// reluBackward zeroes gradient where the pre-activation was non-positive.
func reluBackward(c *reluCache, dY *tensor.Matrix) *tensor.Matrix {
	dX := dY.Clone()
	for i, v := range c.pre.Data {
		if v <= 0 {
			dX.Data[i] = 0
		}
	}
	return dX
}

// attnBackward propagates dOut through multi-head attention, accumulating
// projection gradients; returns (dXq, dXkv). When the attention is
// self-attention the caller adds the two.
func attnBackward(w *model.AttentionWeights, heads int, g *attnGrad, c *attnCache, dOut *tensor.Matrix) (dXq, dXkv *tensor.Matrix) {
	d := w.WQ.W.Cols
	dh := d / heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	dConcat := linBackward(w.WO, g.WO, &c.oc, dOut)
	dQ := tensor.New(c.q.Rows, d)
	dK := tensor.New(c.k.Rows, d)
	dV := tensor.New(c.v.Rows, d)
	for h := 0; h < heads; h++ {
		c0 := h * dh
		dOh := cols(dConcat, c0, c0+dh)
		A := c.probs[h]
		vh := cols(c.v, c0, c0+dh)
		// out = A·Vh ⇒ dA = dOh·Vhᵀ, dVh = Aᵀ·dOh.
		dA := tensor.MatMulT(dOh, vh)
		dVh := tensor.MatMul(tensor.Transpose(A), dOh)
		// softmax backward: dS = A ⊙ (dA − rowdot(dA, A)).
		dS := tensor.New(A.Rows, A.Cols)
		for i := 0; i < A.Rows; i++ {
			aRow := A.Row(i)
			daRow := dA.Row(i)
			var dot float32
			for j, a := range aRow {
				dot += daRow[j] * a
			}
			dsRow := dS.Row(i)
			for j, a := range aRow {
				dsRow[j] = a * (daRow[j] - dot)
			}
		}
		tensor.Scale(dS, scale)
		qh := cols(c.q, c0, c0+dh)
		kh := cols(c.k, c0, c0+dh)
		dQh := tensor.MatMul(dS, kh)
		dKh := tensor.MatMul(tensor.Transpose(dS), qh)
		addCols(dQ, dQh, c0)
		addCols(dK, dKh, c0)
		addCols(dV, dVh, c0)
	}
	dXq = linBackward(w.WQ, g.WQ, &c.qc, dQ)
	dXkv = linBackward(w.WK, g.WK, &c.kc, dK)
	tensor.AddInPlace(dXkv, linBackward(w.WV, g.WV, &c.vc, dV))
	return dXq, dXkv
}

// embedBackward scatters dX into the embedding gradient rows.
func embedBackward(g *Grads, ids []int, dX *tensor.Matrix) {
	for i, id := range ids {
		row := g.Embedding.Row(id)
		for j, v := range dX.Row(i) {
			row[j] += v
		}
	}
}

// backward propagates dLogits through the tape, accumulating into g, and
// returns the gradient flowing into the encoder output (already consumed —
// exposed for tests).
func backward(m *model.Model, fc *forwardCaches, g *Grads, dLogits *tensor.Matrix) {
	heads := m.Cfg.NumHeads
	dy := linBackward(m.P.OutProj, g.OutProj, &fc.outCache, dLogits)

	dEncOut := tensor.New(fc.encOut.Rows, fc.encOut.Cols)
	for li := len(m.P.Decoder) - 1; li >= 0; li-- {
		layer := m.P.Decoder[li]
		gl := g.Decoder[li]
		c := &fc.decLayers[li]
		// y3 = LN3(y2 + FFN(y2))
		dSum := lnBackward(layer.Norm3, gl.Norm3, &c.norm3, dy)
		dFF := linBackward(layer.FFN.Out, gl.FFNOut, &c.ffnOut, dSum)
		dFF = reluBackward(&c.relu, dFF)
		dY2 := linBackward(layer.FFN.In, gl.FFNIn, &c.ffnIn, dFF)
		tensor.AddInPlace(dY2, dSum)
		// y2 = LN2(y1 + Cross(y1, encOut))
		dSum = lnBackward(layer.Norm2, gl.Norm2, &c.norm2, dY2)
		dY1, dEnc := attnBackward(layer.CrossAttn, heads, gl.CrossAttn, &c.cross, dSum)
		tensor.AddInPlace(dY1, dSum)
		tensor.AddInPlace(dEncOut, dEnc)
		// y1 = LN1(y0 + Self(y0))
		dSum = lnBackward(layer.Norm1, gl.Norm1, &c.norm1, dY1)
		dQ, dKV := attnBackward(layer.SelfAttn, heads, gl.SelfAttn, &c.self, dSum)
		dy = dSum
		tensor.AddInPlace(dy, dQ)
		tensor.AddInPlace(dy, dKV)
	}
	embedBackward(g, fc.decIn, dy)

	dx := dEncOut
	for li := len(m.P.Encoder) - 1; li >= 0; li-- {
		layer := m.P.Encoder[li]
		gl := g.Encoder[li]
		c := &fc.encLayers[li]
		dSum := lnBackward(layer.Norm2, gl.Norm2, &c.norm2, dx)
		dFF := linBackward(layer.FFN.Out, gl.FFNOut, &c.ffnOut, dSum)
		dFF = reluBackward(&c.relu, dFF)
		dX1 := linBackward(layer.FFN.In, gl.FFNIn, &c.ffnIn, dFF)
		tensor.AddInPlace(dX1, dSum)
		dSum = lnBackward(layer.Norm1, gl.Norm1, &c.norm1, dX1)
		dQ, dKV := attnBackward(layer.SelfAttn, heads, gl.SelfAttn, &c.attn, dSum)
		dx = dSum
		tensor.AddInPlace(dx, dQ)
		tensor.AddInPlace(dx, dKV)
	}
	embedBackward(g, fc.srcIDs, dx)
}
