package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Unbiased sample variance of the classic dataset is 32/7.
	if math.Abs(r.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", r.Var(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", r.Min(), r.Max())
	}
	if math.Abs(r.Sum()-40) > 1e-12 {
		t.Fatalf("Sum = %v, want 40", r.Sum())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.N() != 0 {
		t.Fatal("empty Running should be all zero")
	}
	r.Add(3)
	if r.Var() != 0 {
		t.Fatalf("single-sample Var = %v, want 0", r.Var())
	}
	if r.Mean() != 3 || r.Min() != 3 || r.Max() != 3 {
		t.Fatal("single-sample stats wrong")
	}
}

func TestRunningMatchesDirect(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var r Running
		var sum float64
		for _, x := range xs {
			r.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var sq float64
		for _, x := range xs {
			sq += (x - mean) * (x - mean)
		}
		variance := sq / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(r.Mean()-mean) < 1e-6*scale &&
			math.Abs(r.Var()-variance) < 1e-4*math.Max(1, variance)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("P0 = %v, want 1", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("P100 = %v, want 100", p)
	}
	if p := s.Percentile(50); math.Abs(p-50.5) > 1e-9 {
		t.Fatalf("P50 = %v, want 50.5", p)
	}
	if p := s.Percentile(99); math.Abs(p-99.01) > 1e-9 {
		t.Fatalf("P99 = %v, want 99.01", p)
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	var s Sample
	for _, x := range []float64{5, 1, 4, 2, 3} {
		s.Add(x)
	}
	if p := s.Percentile(50); p != 3 {
		t.Fatalf("median = %v, want 3", p)
	}
	s.Add(0) // adding after a query must re-sort
	if p := s.Percentile(0); p != 0 {
		t.Fatalf("min after add = %v, want 0", p)
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty sample")
		}
	}()
	var s Sample
	s.Percentile(50)
}

func TestSampleMean(t *testing.T) {
	var s Sample
	if s.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	s.Add(2)
	s.Add(4)
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", s.Mean())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	// -3 clamps into bucket 0, 42 into bucket 4.
	if h.Buckets[0] != 3 { // 0, 1.9, -3
		t.Fatalf("bucket0 = %d, want 3", h.Buckets[0])
	}
	if h.Buckets[4] != 2 { // 9.9, 42
		t.Fatalf("bucket4 = %d, want 2", h.Buckets[4])
	}
	if f := h.Fraction(1); math.Abs(f-1.0/7) > 1e-12 { // just 2
		t.Fatalf("Fraction(1) = %v", f)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for invalid histogram")
				}
			}()
			fn()
		}()
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-3) > 1e-12 {
		t.Fatalf("fit = %v, %v; want 2, 3", slope, intercept)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{1.1, 2.9, 5.2, 6.8, 9.1, 10.9} // ~ y = 2x + 1
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope-2) > 0.1 || math.Abs(intercept-1) > 0.3 {
		t.Fatalf("fit = %v, %v; want ~2, ~1", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	for _, tc := range []struct{ xs, ys []float64 }{
		{[]float64{1}, []float64{1}},
		{[]float64{1, 1}, []float64{1, 2}},
		{[]float64{1, 2}, []float64{1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", tc)
				}
			}()
			LinearFit(tc.xs, tc.ys)
		}()
	}
}

func TestLinearFit2Exact(t *testing.T) {
	// y = 3·x1 − 2·x2 + 7 over a non-degenerate design.
	x1 := []float64{1, 2, 3, 4, 5, 1}
	x2 := []float64{2, 1, 5, 3, 2, 7}
	y := make([]float64, len(x1))
	for i := range y {
		y[i] = 3*x1[i] - 2*x2[i] + 7
	}
	a, b, c := LinearFit2(x1, x2, y)
	if math.Abs(a-3) > 1e-9 || math.Abs(b+2) > 1e-9 || math.Abs(c-7) > 1e-9 {
		t.Fatalf("fit = %v, %v, %v; want 3, -2, 7", a, b, c)
	}
}

func TestLinearFit2Degenerate(t *testing.T) {
	for _, tc := range []struct{ x1, x2, y []float64 }{
		{[]float64{1, 2}, []float64{1, 2}, []float64{1, 2}},          // too few
		{[]float64{1, 2, 3}, []float64{2, 4, 6}, []float64{1, 2, 3}}, // collinear
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", tc)
				}
			}()
			LinearFit2(tc.x1, tc.x2, tc.y)
		}()
	}
}
