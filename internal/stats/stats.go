// Package stats provides the small statistics toolkit used across TCB's
// experiments: running moments, percentile estimation over recorded samples,
// fixed-bucket histograms, and ordinary least squares for calibrating the
// analytic cost model against measured engine times.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean and variance in one pass (Welford).
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records a sample.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples recorded.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest sample (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 when empty).
func (r *Running) Max() float64 { return r.max }

// Sum returns n·mean.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g", r.n, r.Mean(), r.Std(), r.min, r.max)
}

// Sample stores raw observations for exact percentile queries.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records x.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of recorded observations.
func (s *Sample) N() int { return len(s.xs) }

// Percentile returns the p-th percentile (p in [0, 100]) by linear
// interpolation between closest ranks. It panics on an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Histogram counts observations into equal-width buckets over [lo, hi).
// Out-of-range observations are clamped into the first/last bucket so totals
// always reconcile.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	total   int
}

// NewHistogram creates a histogram with n equal-width buckets spanning
// [lo, hi). It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	n := len(h.Buckets)
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(n))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Buckets[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.total)
}

// LinearFit returns slope and intercept of the least-squares line through
// (x, y) pairs. It panics when fewer than 2 points are given or when all x
// are identical.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LinearFit needs >= 2 paired points")
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i, x := range xs {
		sx += x
		sy += ys[i]
		sxx += x * x
		sxy += x * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: LinearFit with constant x")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// LinearFit2 fits y = a·x1 + b·x2 + c by ordinary least squares over the
// paired samples (normal equations, 3×3 Gaussian elimination). It panics
// with fewer than 3 points or a singular design (e.g. x1 and x2 collinear).
func LinearFit2(x1s, x2s, ys []float64) (a, b, c float64) {
	n := len(ys)
	if len(x1s) != n || len(x2s) != n || n < 3 {
		panic("stats: LinearFit2 needs >= 3 paired points")
	}
	// Accumulate the normal equations MᵀM β = Mᵀy for M = [x1 x2 1].
	var s11, s12, s1, s22, s2, sn float64
	var t1, t2, t0 float64
	for i := 0; i < n; i++ {
		x1, x2, y := x1s[i], x2s[i], ys[i]
		s11 += x1 * x1
		s12 += x1 * x2
		s1 += x1
		s22 += x2 * x2
		s2 += x2
		t1 += x1 * y
		t2 += x2 * y
		t0 += y
	}
	sn = float64(n)
	m := [3][4]float64{
		{s11, s12, s1, t1},
		{s12, s22, s2, t2},
		{s1, s2, sn, t0},
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			panic("stats: LinearFit2 singular design matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k < 4; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	return m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]
}
