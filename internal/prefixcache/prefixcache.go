// Package prefixcache is the shared-prompt prefix KV cache: a
// reference-counted, byte-budgeted trie over token prefixes mapping each
// declared prefix to its frozen encoder output rows and per-decoder-layer
// cross-attention K/V (model.PrefixKV).
//
// Exactness comes from the model layer, not from here: separate positional
// encoding per segment (§4.1.1) makes a declared prefix's encoder rows a
// function of its own tokens alone, so the frozen rows a hit replays are
// bitwise identical to the rows a cold encode would produce. The cache is
// therefore free to hit or miss arbitrarily — outputs never change, only
// the work to produce them.
//
// Lifecycle: the serving layer Acquires (pins) an entry at admission and
// Releases it at the request's terminal outcome — delivery, deadline miss,
// failure, shed, or server teardown — so an entry backing an in-flight
// segment can never be evicted under it (the prefix-cache analogue of
// §4.2.2's rule that early cleaning must not free slots another live segment
// still references). Eviction is LRU by last hit and only ever considers
// entries with zero pins; resident bytes are charged per entry against an
// optional gpu.MemoryManager so device accounting balances to zero when the
// cache is cleared at drain.
package prefixcache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tcb/internal/gpu"
	"tcb/internal/model"
	"tcb/internal/tensor"
)

// Cache is safe for concurrent use by the serving layer and engine.
type Cache struct {
	mu     sync.Mutex
	root   *node
	budget int64 // resident-byte budget; <= 0 means unbounded
	mem    *gpu.MemoryManager

	// LRU by last hit: head is most recently hit, tail the eviction victim.
	head, tail *entry

	used    int64
	entries int

	hits, misses, inserts, evictions, rejected, tokensSaved int64
}

// node is one trie vertex; the edge from its parent is labelled tok.
type node struct {
	parent   *node
	tok      int
	children map[int]*node
	e        *entry
}

// entry is one cached prefix.
type entry struct {
	c      *Cache
	n      *node
	length int // prefix length in tokens
	enc    *tensor.Matrix
	kv     *model.PrefixKV
	bytes  int64
	tag    string
	refs   int
	prev, next *entry
}

// memSeq numbers cache entries process-wide for memory-manager tags.
var memSeq atomic.Int64

// New returns a cache with the given resident-byte budget (<= 0 means
// unbounded). mem, when non-nil, is charged one allocation per resident
// entry, so device accounting covers the cache alongside batch launches.
func New(budget int64, mem *gpu.MemoryManager) *Cache {
	return &Cache{budget: budget, mem: mem, root: &node{children: make(map[int]*node)}}
}

// Handle is a pin on a cache entry. The zero Handle is a miss. Each Handle
// must be Released exactly once by its owner; Release on a zero or
// already-released Handle is a no-op.
type Handle struct {
	e *entry
}

// Valid reports whether the handle pins an entry (i.e. the lookup hit).
func (h Handle) Valid() bool { return h.e != nil }

// Len returns the pinned prefix's length in tokens (0 for a zero Handle).
func (h Handle) Len() int {
	if h.e == nil {
		return 0
	}
	return h.e.length
}

// Enc returns the pinned prefix's frozen encoder output rows (read-only).
func (h Handle) Enc() *tensor.Matrix {
	if h.e == nil {
		return nil
	}
	return h.e.enc
}

// KV returns the pinned prefix's frozen cross-attention K/V (read-only).
func (h Handle) KV() *model.PrefixKV {
	if h.e == nil {
		return nil
	}
	return h.e.kv
}

// Release drops the pin. Idempotent through the receiving pointer: the
// handle forgets its entry on first release.
func (h *Handle) Release() {
	if h == nil || h.e == nil {
		return
	}
	e := h.e
	h.e = nil
	c := e.c
	c.mu.Lock()
	if e.refs > 0 {
		e.refs--
	}
	c.mu.Unlock()
}

// Acquire looks up tokens[:n] and, on an exact match, pins the entry and
// returns its handle; the zero Handle reports a miss. A hit refreshes the
// entry's LRU position and counts n tokens saved (the encoder work the hit
// avoids). The warm path performs no heap allocations.
func (c *Cache) Acquire(tokens []int, n int) Handle {
	if n <= 0 || n > len(tokens) {
		return Handle{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	nd := c.root
	for i := 0; i < n; i++ {
		next := nd.children[tokens[i]]
		if next == nil {
			c.misses++
			return Handle{}
		}
		nd = next
	}
	e := nd.e
	if e == nil || e.length != n {
		c.misses++
		return Handle{}
	}
	c.hits++
	c.tokensSaved += int64(n)
	e.refs++
	c.lruFront(e)
	return Handle{e: e}
}

// Contains reports whether tokens[:n] is resident, without pinning or
// touching the LRU order or hit/miss counters.
func (c *Cache) Contains(tokens []int, n int) bool {
	_, _, ok := c.Peek(tokens, n)
	return ok
}

// Peek returns the frozen state of tokens[:n] without pinning, counting or
// LRU-refreshing — the engine's lookup for items whose pin the serving
// layer already holds. The returned matrices are read-only and stay valid
// (immutable, never recycled) even past eviction; only the byte accounting
// ends at eviction.
func (c *Cache) Peek(tokens []int, n int) (*tensor.Matrix, *model.PrefixKV, bool) {
	if n <= 0 || n > len(tokens) {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	nd := c.root
	for i := 0; i < n; i++ {
		if nd = nd.children[tokens[i]]; nd == nil {
			return nil, nil, false
		}
	}
	if nd.e == nil || nd.e.length != n {
		return nil, nil, false
	}
	return nd.e.enc, nd.e.kv, true
}

// Insert stores the frozen state of tokens[:n]. enc must be the prefix's own
// encoder output (n rows; the cache takes ownership) and kv its built
// PrefixKV. Inserting an already-resident prefix is a no-op (the frozen
// values are bitwise identical by construction). When the byte budget or the
// memory manager's capacity cannot fit the entry even after evicting every
// unpinned one, the insert is rejected and counted; the cache never blocks
// and never evicts a pinned entry. Returns whether the prefix is resident
// after the call.
func (c *Cache) Insert(tokens []int, n int, enc *tensor.Matrix, kv *model.PrefixKV) bool {
	if n <= 0 || n > len(tokens) || enc == nil || enc.Rows != n || kv == nil || kv.Len != n {
		return false
	}
	bytes := int64(enc.Rows*enc.Cols)*4 + kv.Bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	nd := c.root
	for i := 0; i < n; i++ {
		next := nd.children[tokens[i]]
		if next == nil {
			next = &node{parent: nd, tok: tokens[i], children: make(map[int]*node)}
			nd.children[tokens[i]] = next
		}
		nd = next
	}
	if nd.e != nil {
		return true // already resident; frozen values are identical
	}
	// Make room under the byte budget.
	if c.budget > 0 {
		for c.used+bytes > c.budget && c.evictOneLocked() {
		}
		if c.used+bytes > c.budget {
			c.rejected++
			c.pruneLocked(nd)
			return false
		}
	}
	tag := ""
	if c.mem != nil {
		tag = fmt.Sprintf("prefix-%d", memSeq.Add(1))
		err := c.mem.Alloc(tag, bytes)
		for err != nil && c.evictOneLocked() {
			err = c.mem.Alloc(tag, bytes)
		}
		if err != nil {
			c.rejected++
			c.pruneLocked(nd)
			return false
		}
	}
	e := &entry{c: c, n: nd, length: n, enc: enc, kv: kv, bytes: bytes, tag: tag}
	nd.e = e
	c.used += bytes
	c.entries++
	c.inserts++
	c.lruFront(e)
	return true
}

// evictOneLocked removes the least-recently-hit unpinned entry; it reports
// whether anything was evicted.
func (c *Cache) evictOneLocked() bool {
	for e := c.tail; e != nil; e = e.prev {
		if e.refs == 0 {
			c.removeLocked(e)
			c.evictions++
			return true
		}
	}
	return false
}

// removeLocked detaches e from the trie, the LRU list and the accounting.
func (c *Cache) removeLocked(e *entry) {
	e.n.e = nil
	c.pruneLocked(e.n)
	c.lruUnlink(e)
	c.used -= e.bytes
	c.entries--
	if e.tag != "" {
		_ = c.mem.Free(e.tag)
	}
}

// pruneLocked deletes now-empty trie vertices on the path back to the root.
func (c *Cache) pruneLocked(nd *node) {
	for nd != nil && nd.parent != nil && nd.e == nil && len(nd.children) == 0 {
		delete(nd.parent.children, nd.tok)
		p := nd.parent
		nd.parent = nil
		nd = p
	}
}

// Clear evicts every entry — pinned or not — and frees its memory charge.
// It is the teardown path (serve Drain/Stop): by then every request has
// reached a terminal outcome, so no pins should remain; any that do are
// forcibly dropped so device accounting still balances to zero. Returns the
// number of entries cleared.
func (c *Cache) Clear() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for c.head != nil {
		c.removeLocked(c.head)
		n++
	}
	return n
}

// lruFront moves e to the front of the LRU list (inserting it if new).
func (c *Cache) lruFront(e *entry) {
	if c.head == e {
		return
	}
	c.lruUnlink(e)
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// lruUnlink detaches e from the LRU list if it is linked.
func (c *Cache) lruUnlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Inserts       int64   `json:"inserts"`
	Evictions     int64   `json:"evictions"`
	Rejected      int64   `json:"rejected"`       // inserts refused (budget/capacity)
	TokensSaved   int64   `json:"tokens_saved"`   // encoder tokens hits avoided
	ResidentBytes int64   `json:"resident_bytes"` // bytes charged right now
	Entries       int     `json:"entries"`
	HitRate       float64 `json:"hit_rate"` // hits / (hits + misses); 0 when idle
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Hits: c.hits, Misses: c.misses, Inserts: c.inserts,
		Evictions: c.evictions, Rejected: c.rejected,
		TokensSaved:   c.tokensSaved,
		ResidentBytes: c.used,
		Entries:       c.entries,
	}
	if total := c.hits + c.misses; total > 0 {
		st.HitRate = float64(c.hits) / float64(total)
	}
	return st
}
