package prefixcache

import (
	"fmt"
	"sync"
	"testing"

	"tcb/internal/gpu"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/tensor"
)

// fakeState builds a plausible frozen state for an n-token prefix: encoder
// rows plus one decoder layer of cross K/V, all n × d. Entry cost is
// 3·n·d·4 bytes.
func fakeState(n, d int) (*tensor.Matrix, *model.PrefixKV) {
	enc := tensor.New(n, d)
	kv := &model.PrefixKV{Len: n, Layers: []model.PrefixLayerKV{
		{K: tensor.New(n, d), V: tensor.New(n, d)},
	}}
	return enc, kv
}

func entryBytes(n, d int) int64 { return int64(3 * n * d * 4) }

func TestMissInsertHit(t *testing.T) {
	c := New(0, nil)
	toks := []int{3, 4, 5, 6, 7}

	if h := c.Acquire(toks, 4); h.Valid() {
		t.Fatal("empty cache must miss")
	}
	enc, kv := fakeState(4, 8)
	if !c.Insert(toks, 4, enc, kv) {
		t.Fatal("insert into empty cache must succeed")
	}
	h := c.Acquire(toks, 4)
	if !h.Valid() || h.Len() != 4 {
		t.Fatalf("resident prefix must hit with Len 4, got valid=%v len=%d", h.Valid(), h.Len())
	}
	// A hit must hand back the exact frozen state, not a copy: the engine
	// splices these matrices into the batch.
	if h.Enc() != enc || h.KV() != kv {
		t.Fatal("hit must return the inserted matrices themselves")
	}
	// Peek is the engine's non-counting view of the same state.
	penc, pkv, ok := c.Peek(toks, 4)
	if !ok || penc != enc || pkv != kv {
		t.Fatal("Peek must see the same frozen state")
	}
	if !c.Contains(toks, 4) {
		t.Fatal("Contains must report the resident prefix")
	}
	h.Release()

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("want 1 hit / 1 miss / 1 insert, got %+v", st)
	}
	if st.TokensSaved != 4 {
		t.Fatalf("a 4-token hit saves 4 tokens, got %d", st.TokensSaved)
	}
	if st.Entries != 1 || st.ResidentBytes != entryBytes(4, 8) {
		t.Fatalf("want 1 entry of %d bytes, got %d of %d", entryBytes(4, 8), st.Entries, st.ResidentBytes)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", st.HitRate)
	}
}

func TestInsertRejectsMalformedState(t *testing.T) {
	c := New(0, nil)
	toks := []int{1, 2, 3}
	enc, kv := fakeState(3, 8)
	for name, ok := range map[string]bool{
		"n=0":         c.Insert(toks, 0, enc, kv),
		"n>len":       c.Insert(toks, 4, enc, kv),
		"nil enc":     c.Insert(toks, 3, nil, kv),
		"nil kv":      c.Insert(toks, 3, enc, nil),
		"short enc":   c.Insert(toks, 3, tensor.New(2, 8), kv),
		"kv len skew": c.Insert(toks, 3, enc, &model.PrefixKV{Len: 2}),
	} {
		if ok {
			t.Errorf("%s: malformed insert must be refused", name)
		}
	}
	if st := c.Stats(); st.Entries != 0 || st.Inserts != 0 {
		t.Fatalf("malformed inserts must leave the cache empty, got %+v", st)
	}
}

func TestInsertIdempotent(t *testing.T) {
	c := New(0, nil)
	toks := []int{9, 8, 7}
	enc, kv := fakeState(3, 4)
	if !c.Insert(toks, 3, enc, kv) {
		t.Fatal("first insert must succeed")
	}
	enc2, kv2 := fakeState(3, 4)
	if !c.Insert(toks, 3, enc2, kv2) {
		t.Fatal("re-insert of a resident prefix must report resident")
	}
	st := c.Stats()
	if st.Inserts != 1 || st.Entries != 1 || st.ResidentBytes != entryBytes(3, 4) {
		t.Fatalf("re-insert must be a no-op, got %+v", st)
	}
	// The original frozen state survives (they are bitwise identical by
	// construction, but pointer identity proves no churn).
	if h := c.Acquire(toks, 3); h.Enc() != enc {
		t.Fatal("re-insert must not replace the resident entry")
	}
}

func TestExactLengthMatchOnly(t *testing.T) {
	c := New(0, nil)
	toks := []int{5, 5, 5, 5}
	enc, kv := fakeState(4, 4)
	c.Insert(toks, 4, enc, kv)
	// The 3-token prefix of a resident 4-token prefix is NOT resident: its
	// trie vertex exists but holds no entry.
	if h := c.Acquire(toks, 3); h.Valid() {
		t.Fatal("shorter prefix of a resident entry must miss")
	}
	// Both lengths can be resident independently.
	enc3, kv3 := fakeState(3, 4)
	c.Insert(toks, 3, enc3, kv3)
	h3, h4 := c.Acquire(toks, 3), c.Acquire(toks, 4)
	if h3.Enc() != enc3 || h4.Enc() != enc {
		t.Fatal("nested prefixes must resolve to their own entries")
	}
	h3.Release()
	h4.Release()
}

func TestBudgetEvictsLRU(t *testing.T) {
	// Room for exactly two 4×4 entries.
	c := New(2*entryBytes(4, 4), nil)
	a, b, d := []int{1, 1, 1, 1}, []int{2, 2, 2, 2}, []int{3, 3, 3, 3}
	ea, kva := fakeState(4, 4)
	eb, kvb := fakeState(4, 4)
	ed, kvd := fakeState(4, 4)
	c.Insert(a, 4, ea, kva)
	c.Insert(b, 4, eb, kvb)
	// Refresh a: b becomes the LRU victim.
	h := c.Acquire(a, 4)
	h.Release()
	if !c.Insert(d, 4, ed, kvd) {
		t.Fatal("insert over budget must evict the LRU entry and succeed")
	}
	if c.Contains(b, 4) {
		t.Fatal("least-recently-hit entry must be the one evicted")
	}
	if !c.Contains(a, 4) || !c.Contains(d, 4) {
		t.Fatal("refreshed and new entries must stay resident")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.ResidentBytes != 2*entryBytes(4, 4) {
		t.Fatalf("want 1 eviction and 2 resident entries, got %+v", st)
	}
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	c := New(2*entryBytes(4, 4), nil)
	a, b, d := []int{1, 1, 1, 1}, []int{2, 2, 2, 2}, []int{3, 3, 3, 3}
	ea, kva := fakeState(4, 4)
	eb, kvb := fakeState(4, 4)
	ed, kvd := fakeState(4, 4)
	c.Insert(a, 4, ea, kva)
	c.Insert(b, 4, eb, kvb)
	ha, hb := c.Acquire(a, 4), c.Acquire(b, 4)

	// Every resident entry is pinned: the insert must be refused, never
	// block, and never evict under a live segment.
	if c.Insert(d, 4, ed, kvd) {
		t.Fatal("insert must be rejected while every candidate victim is pinned")
	}
	if st := c.Stats(); st.Rejected != 1 || st.Evictions != 0 {
		t.Fatalf("want 1 rejection and 0 evictions, got %+v", st)
	}
	if !c.Contains(a, 4) || !c.Contains(b, 4) {
		t.Fatal("pinned entries must survive")
	}

	// Releasing one pin frees a victim; double-release must not free two.
	ha.Release()
	ha.Release()
	if !c.Insert(d, 4, ed, kvd) {
		t.Fatal("insert must succeed once a victim is unpinned")
	}
	if c.Contains(a, 4) {
		t.Fatal("the unpinned entry must be the victim")
	}
	if !c.Contains(b, 4) {
		t.Fatal("the still-pinned entry must survive")
	}
	hb.Release()
}

func TestMemoryManagerBalances(t *testing.T) {
	mem := gpu.NewMemoryManager(0)
	c := New(0, mem)
	src := rng.New(7)
	for i := 0; i < 10; i++ {
		toks := make([]int, 6)
		for j := range toks {
			toks[j] = src.Intn(50)
		}
		enc, kv := fakeState(6, 8)
		c.Insert(toks, 6, enc, kv)
	}
	st := c.Stats()
	if mem.Used() != st.ResidentBytes {
		t.Fatalf("ledger %d bytes vs cache %d", mem.Used(), st.ResidentBytes)
	}
	if n := c.Clear(); n != st.Entries {
		t.Fatalf("Clear removed %d entries, want %d", n, st.Entries)
	}
	if mem.Used() != 0 || mem.Outstanding() != 0 {
		t.Fatalf("ledger must balance to zero after Clear: %d bytes, %d outstanding",
			mem.Used(), mem.Outstanding())
	}
	if st := c.Stats(); st.Entries != 0 || st.ResidentBytes != 0 {
		t.Fatalf("cache must be empty after Clear, got %+v", st)
	}
}

func TestCapacityRejectionBalances(t *testing.T) {
	// Device capacity fits one entry, not two; the cache holds no budget of
	// its own, so the manager is the limit.
	mem := gpu.NewMemoryManager(entryBytes(4, 4) + entryBytes(4, 4)/2)
	c := New(0, mem)
	a, b := []int{1, 2, 3, 4}, []int{5, 6, 7, 8}
	ea, kva := fakeState(4, 4)
	eb, kvb := fakeState(4, 4)
	if !c.Insert(a, 4, ea, kva) {
		t.Fatal("first entry fits")
	}
	h := c.Acquire(a, 4) // pin: eviction cannot make room
	if c.Insert(b, 4, eb, kvb) {
		t.Fatal("second entry must be rejected at device capacity with the first pinned")
	}
	h.Release()
	if !c.Insert(b, 4, eb, kvb) {
		t.Fatal("second entry must fit after evicting the unpinned first")
	}
	st := c.Stats()
	if st.Rejected != 1 || st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("want 1 rejection, 1 eviction, 1 entry, got %+v", st)
	}
	c.Clear()
	if mem.Used() != 0 || mem.Outstanding() != 0 {
		t.Fatal("ledger must balance after rejection + eviction + clear")
	}
}

func TestClearDropsPins(t *testing.T) {
	mem := gpu.NewMemoryManager(0)
	c := New(0, mem)
	toks := []int{4, 4, 4}
	enc, kv := fakeState(3, 4)
	c.Insert(toks, 3, enc, kv)
	h := c.Acquire(toks, 3)
	if n := c.Clear(); n != 1 {
		t.Fatalf("Clear must drop the pinned entry at teardown, removed %d", n)
	}
	if mem.Used() != 0 || mem.Outstanding() != 0 {
		t.Fatal("ledger must balance even when Clear drops a pin")
	}
	h.Release() // late release of a cleared entry must be harmless
}

func TestWarmAcquireAllocsFree(t *testing.T) {
	c := New(0, nil)
	toks := []int{10, 11, 12, 13, 14, 15, 16, 17}
	enc, kv := fakeState(8, 16)
	c.Insert(toks, 8, enc, kv)
	allocs := testing.AllocsPerRun(100, func() {
		h := c.Acquire(toks, 8)
		h.Release()
	})
	if allocs != 0 {
		t.Fatalf("warm Acquire/Release allocated %.1f times per run, want 0", allocs)
	}
}

// TestChaosRefcountEviction hammers the cache from many goroutines — pin,
// release, insert over a tight budget, periodic Clear — and checks the
// invariants that matter under -race: no pinned entry is ever evicted under
// its holder (the handle's frozen state stays usable), and the memory
// ledger balances to zero at the end.
func TestChaosRefcountEviction(t *testing.T) {
	mem := gpu.NewMemoryManager(0)
	c := New(6*entryBytes(4, 8), mem) // room for ~6 of 16 prefixes: constant churn
	prefixes := make([][]int, 16)
	src := rng.New(99)
	for i := range prefixes {
		toks := make([]int, 4)
		for j := range toks {
			toks[j] = src.Intn(40)
		}
		prefixes[i] = toks
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 400; i++ {
				p := prefixes[r.Intn(len(prefixes))]
				switch r.Intn(10) {
				case 0: // teardown mid-traffic
					c.Clear()
				case 1, 2, 3: // miss-then-insert, as the engine does post-encode
					if h := c.Acquire(p, 4); h.Valid() {
						if h.Len() != 4 || h.Enc() == nil || h.KV() == nil {
							t.Error("pinned entry lost its frozen state")
						}
						h.Release()
					} else {
						enc, kv := fakeState(4, 8)
						c.Insert(p, 4, enc, kv)
					}
				default: // plain pinned read
					h := c.Acquire(p, 4)
					if h.Valid() && h.Enc().Rows != 4 {
						t.Error("frozen rows corrupted under churn")
					}
					h.Release()
					h.Release() // double release must stay safe under races
				}
			}
		}(uint64(100 + g))
	}
	wg.Wait()
	c.Clear()
	if mem.Used() != 0 || mem.Outstanding() != 0 {
		t.Fatalf("ledger out of balance after chaos: %d bytes, %d outstanding",
			mem.Used(), mem.Outstanding())
	}
	st := c.Stats()
	if st.Entries != 0 || st.ResidentBytes != 0 {
		t.Fatalf("cache not empty after final Clear: %+v", st)
	}
	if st.Hits+st.Misses == 0 || st.Inserts == 0 {
		t.Fatalf("chaos exercised nothing: %+v", st)
	}
}

// FuzzTrieResidency cross-checks the trie against a map model: after an
// arbitrary interleaving of inserts and acquires over short token strings,
// every prefix the model says was inserted (and never evicted — the fuzz
// cache is unbounded) must hit, and everything else must miss.
func FuzzTrieResidency(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{9, 1, 9, 1, 9, 1, 2, 2, 2})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := New(0, nil)
		resident := map[string]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			// Each op covers a 1–4 token prefix drawn from a 4-token alphabet,
			// so interleavings collide constantly.
			n := 1 + int(data[i]&3)
			toks := make([]int, n)
			v := data[i+1]
			for j := range toks {
				toks[j] = int(v>>uint(2*j)) & 3
			}
			key := fmt.Sprintf("%d-%d", n, v)
			if data[i]&4 == 0 {
				enc, kv := fakeState(n, 4)
				if !c.Insert(toks, n, enc, kv) {
					t.Fatalf("unbounded insert of %v failed", toks)
				}
				resident[key] = true
			} else {
				h := c.Acquire(toks, n)
				if h.Valid() != resident[key] {
					t.Fatalf("Acquire(%v) = %v, model says %v", toks, h.Valid(), resident[key])
				}
				h.Release()
			}
		}
	})
}
