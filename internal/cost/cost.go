// Package cost provides the analytic batch-time model the serving simulator
// charges each batch with, replacing the paper's V100 measurements with a
// calibrated FLOPs/bandwidth model (see DESIGN.md §2 for the substitution
// argument).
//
// One batch's time decomposes into three measurable components:
//
//   - token work: every token position the layout processes — padding
//     included — pays the projection + FFN cost. This is the redundancy
//     batching schemes differ on (Fig. 1).
//   - score work: every attention-score entry pays a (memory-bound) cost.
//     Dense schemes compute PadTo² entries per row; slotting shrinks this
//     to SlotSize² per occupied slot (§4.2, Figs. 13–14).
//   - launch overhead: a fixed cost per sub-batch submission (kernel
//     launches, host/device transfer setup). TurboBatching pays it once
//     per DP group.
//
// Defaults are calibrated so laptop-scale simulations reproduce the
// *shapes* of the paper's Figures 9–16; Calibrate fits the constants to
// wall-clock measurements of the real Go engine instead.
package cost

import (
	"fmt"
	"math"
	"time"

	"tcb/internal/batch"
	"tcb/internal/model"
	"tcb/internal/stats"
)

// Params are the constants of the batch-time model.
type Params struct {
	// PerTokenSeconds is the time to push one token position through the
	// encoder (projections + FFN, amortized).
	PerTokenSeconds float64
	// PerScoreSeconds is the time per attention-score entry (score matmul,
	// mask add, softmax, A·V — all low-arithmetic-intensity work).
	PerScoreSeconds float64
	// PerBatchSeconds is the fixed submission overhead per sub-batch.
	PerBatchSeconds float64

	// The decoder is auto-regressive (§4.2.2): a batch holds the engine
	// for DecodeRounds rounds, and each round advances every *live
	// request* by one token. Round cost therefore scales with the number
	// of concatenated requests, not with padded tokens — which is why
	// ConcatBatching's advantage compounds during decoding: one launch
	// decodes ~L/l̄ requests per row where the padded baselines decode one.
	DecodeRounds float64 // expected decoder rounds per batch (≈ mean output length)
	// PerSegmentRoundSeconds is the decode cost per request per round.
	PerSegmentRoundSeconds float64
	// PerRoundSeconds is the fixed per-round floor (kernel launch chain).
	PerRoundSeconds float64

	// LoadFraction is the share of PerBatchSeconds spent loading the next
	// batch's data to the device. Under slotted ConcatBatching with early
	// memory cleaning (§4.2.2) that load can overlap the current batch's
	// decode tail; see OverlapSavings.
	LoadFraction float64
}

// DecodeDuration returns the decode-phase seconds of a batch.
func (p Params) DecodeDuration(b *batch.Batch) float64 {
	return p.DecodeRounds * (p.PerRoundSeconds + float64(b.NumItems())*p.PerSegmentRoundSeconds)
}

// OverlapSavings returns the seconds of the next batch's loading that early
// slot cleaning can hide behind this batch's decode tail (§4.2.2). The
// per-request decode length is modelled proportional to input length
// (normalized so the batch mean matches DecodeRounds); the first slot to
// finish opens the overlap window. Zero for non-slotted schemes — pure
// ConcatBatching cannot separate its rows into freeable tensors.
func (p Params) OverlapSavings(b *batch.Batch) float64 {
	if b.Scheme != batch.SlottedConcat || b.NumItems() == 0 || p.DecodeRounds <= 0 {
		return 0
	}
	mean := float64(b.UsedTokens()) / float64(b.NumItems())
	if mean <= 0 {
		return 0
	}
	rounds := func(it batch.Item) float64 {
		return p.DecodeRounds * float64(it.Len) / mean
	}
	var maxFinish float64
	earliest := math.Inf(1)
	for _, row := range b.Rows {
		for _, group := range b.SlotGroups(row) {
			var slotFinish float64
			for _, it := range group {
				if r := rounds(it); r > slotFinish {
					slotFinish = r
				}
			}
			if slotFinish > maxFinish {
				maxFinish = slotFinish
			}
			if slotFinish < earliest {
				earliest = slotFinish
			}
		}
	}
	if maxFinish <= 0 || math.IsInf(earliest, 1) {
		return 0
	}
	windowFrac := (maxFinish - earliest) / maxFinish
	window := windowFrac * p.DecodeDuration(b)
	load := p.LoadFraction * p.PerBatchSeconds
	if load < window {
		return load
	}
	return window
}

// Validate reports non-physical parameters.
func (p Params) Validate() error {
	if p.PerTokenSeconds <= 0 || p.PerScoreSeconds < 0 || p.PerBatchSeconds < 0 {
		return fmt.Errorf("cost: invalid params %+v", p)
	}
	if p.DecodeRounds < 0 || p.PerSegmentRoundSeconds < 0 || p.PerRoundSeconds < 0 {
		return fmt.Errorf("cost: negative decode terms %+v", p)
	}
	return nil
}

// TokenFLOPs returns the per-token FLOPs of one full forward pass through
// cfg's encoder and decoder stacks: the QKVO projections (8·d² FLOPs per
// layer, counting multiply-adds as 2) and the two FFN matmuls (4·d·dff),
// with the decoder adding cross-attention projections.
func TokenFLOPs(cfg model.Config) float64 {
	d := float64(cfg.DModel)
	dff := float64(cfg.DFF)
	proj := 8 * d * d
	ffn := 4 * d * dff
	enc := float64(cfg.EncLayers) * (proj + ffn)
	dec := float64(cfg.DecLayers) * (2*proj + ffn) // self + cross attention
	return enc + dec
}

// ScoreFLOPs returns the FLOPs per attention-score entry for cfg: the
// QKᵀ dot product and the A·V accumulation each touch d values per entry
// across all heads (4·d FLOPs), per attention sub-layer.
func ScoreFLOPs(cfg model.Config) float64 {
	d := float64(cfg.DModel)
	layers := float64(cfg.EncLayers + 2*cfg.DecLayers)
	return layers * 4 * d
}

// DefaultParams derives Params for cfg on a simulated V100-class device.
//
// The dense token work runs near peak tensor throughput; the score work is
// charged at an effective rate two orders of magnitude lower, reflecting
// that score materialization, masking, softmax and A·V are memory-bound
// kernels (the regime in which the paper measures up to 2.31× from
// slotting, Fig. 14). The launch overhead is a per-sub-batch constant in
// the low hundreds of microseconds, typical of an eager-mode framework
// round trip.
func DefaultParams(cfg model.Config) Params {
	const (
		denseFLOPS = 14e12 // effective FLOP/s for big dense matmuls
		scoreFLOPS = 0.2e12
		launchSecs = 350e-6
		roundSecs  = 250e-6 // per-decode-round kernel-chain floor
		// Single-token decode steps run far below dense peak (small
		// matmuls, memory bound): charge them at 1/8 efficiency.
		decodeSlowdown = 8
		decodeRounds   = 20 // ≈ mean output length of the paper workload
	)
	perToken := TokenFLOPs(cfg) / denseFLOPS
	return Params{
		PerTokenSeconds:        perToken,
		PerScoreSeconds:        ScoreFLOPs(cfg) / scoreFLOPS,
		PerBatchSeconds:        launchSecs,
		DecodeRounds:           decodeRounds,
		PerSegmentRoundSeconds: perToken * decodeSlowdown,
		PerRoundSeconds:        roundSecs,
		LoadFraction:           0.35,
	}
}

// BatchTime returns the simulated seconds to run one batch: encode work on
// the padded layout plus the auto-regressive decode phase.
func (p Params) BatchTime(b *batch.Batch) float64 {
	if b.NumItems() == 0 {
		return 0
	}
	tokens := float64(b.SlottedTokens()) // == TotalTokens for dense schemes
	area := float64(b.ScoreArea())
	encode := p.PerBatchSeconds + tokens*p.PerTokenSeconds + area*p.PerScoreSeconds
	decode := p.DecodeRounds * (p.PerRoundSeconds + float64(b.NumItems())*p.PerSegmentRoundSeconds)
	return encode + decode
}

// PredictBatchDuration returns BatchTime as a time.Duration: the latency
// prediction hook the serving supervision watchdog multiplies by its slack
// factor to derive a per-batch wall-clock budget. Calibrate the params
// against the real engine first (engine.MeasureCost) — the V100-scale
// defaults predict far below what the Go CPU engine takes.
func (p Params) PredictBatchDuration(b *batch.Batch) time.Duration {
	return time.Duration(p.BatchTime(b) * float64(time.Second))
}

// PrefixSavings returns the encode-side seconds one prefix-cache hit saves
// when its first cachedLen tokens are served from the cache instead of
// re-encoded: the cached positions' projection/FFN work plus the prefix
// segment's own block-diagonal self-attention area (cachedLen² score
// entries — a declared prefix encodes as its own attention segment, so that
// block is exactly what the engine skips on a hit). Decode work is
// unchanged: a hit request decodes every round like any other segment,
// attending over the frozen prefix rows.
//
// The simulator subtracts this per hit from the batch time it charges
// (System.PrefixCache); the live serving layer needs no discount because
// hit items enter layouts with Len already shrunk to the uncached suffix,
// so PredictBatchDuration sees the reduced work directly.
func (p Params) PrefixSavings(cachedLen int) float64 {
	if cachedLen <= 0 {
		return 0
	}
	c := float64(cachedLen)
	return c*p.PerTokenSeconds + c*c*p.PerScoreSeconds
}

// BatchPrefixSavings sums PrefixSavings over a batch's cache-served items
// (Item.CachedLen) — the watchdog-calibration counterpart of PrefixSavings
// for layouts that annotate their cached prefixes.
func (p Params) BatchPrefixSavings(b *batch.Batch) float64 {
	var s float64
	for _, r := range b.Rows {
		for _, it := range r.Items {
			s += p.PrefixSavings(it.CachedLen)
		}
	}
	return s
}

// PredictAdmissionDuration predicts the extra latency one continuous-
// batching admission of the given input length adds to a running batch: its
// encode cost (tokens and self-attention score area) plus its share of the
// per-segment decode-round cost. The serving layer feeds this into the
// supervision watchdog as each admission joins a launch, so the budget
// keeps tracking the batch's composition (Config.PredictAdmission).
func (p Params) PredictAdmissionDuration(lenTokens int) time.Duration {
	if lenTokens <= 0 {
		return 0
	}
	tokens := float64(lenTokens)
	encode := tokens*p.PerTokenSeconds + tokens*tokens*p.PerScoreSeconds
	decode := p.DecodeRounds * p.PerSegmentRoundSeconds
	return time.Duration((encode + decode) * float64(time.Second))
}

// PredictStageDurations splits PredictBatchDuration's budget across the
// serve pipeline's three stages. The fixed launch overhead PerBatchSeconds
// is the non-compute share of a batch: its LoadFraction part is the
// next-batch data staging (the work the pipeline's prepare stage hides
// behind compute, §4.2.2), the remainder is result unloading plus memory
// cleaning (the cleanup stage). Compute is everything else — token, score
// and decode work. The three durations sum to PredictBatchDuration, so the
// per-stage budgets are consistent with the watchdog's whole-batch budget.
func (p Params) PredictStageDurations(b *batch.Batch) (prepare, compute, cleanup time.Duration) {
	total := p.BatchTime(b)
	overhead := p.PerBatchSeconds
	if overhead > total {
		overhead = total
	}
	prepSecs := p.LoadFraction * overhead
	cleanSecs := overhead - prepSecs
	sec := float64(time.Second)
	prepare = time.Duration(prepSecs * sec)
	cleanup = time.Duration(cleanSecs * sec)
	compute = time.Duration((total - overhead) * sec)
	return prepare, compute, cleanup
}

// PlanTime returns the simulated seconds to run a sequence of sub-batches
// back to back (TurboBatching's DP emits one per group).
func (p Params) PlanTime(plan []*batch.Batch) float64 {
	var t float64
	for _, b := range plan {
		t += p.BatchTime(b)
	}
	return t
}

// Measurement pairs a batch layout with its observed wall-clock seconds,
// for calibration.
type Measurement struct {
	Tokens    int // token positions processed
	ScoreArea int // attention entries computed
	Seconds   float64
}

// Calibrate fits PerTokenSeconds and PerBatchSeconds by least squares from
// measurements with equal ScoreArea-to-token ratios factored out: it
// first removes the score-work estimate scoreSecs·area from each sample,
// then fits seconds = PerBatch + PerToken·tokens. Use measurements of the
// real engine at fixed row structure, varying token count.
func Calibrate(ms []Measurement, perScoreSeconds float64) (Params, error) {
	if len(ms) < 2 {
		return Params{}, fmt.Errorf("cost: need at least 2 measurements, got %d", len(ms))
	}
	xs := make([]float64, len(ms))
	ys := make([]float64, len(ms))
	for i, m := range ms {
		xs[i] = float64(m.Tokens)
		ys[i] = m.Seconds - perScoreSeconds*float64(m.ScoreArea)
	}
	slope, intercept := stats.LinearFit(xs, ys)
	if slope <= 0 {
		return Params{}, fmt.Errorf("cost: calibration produced non-positive per-token time %g", slope)
	}
	if intercept < 0 {
		intercept = 0
	}
	return Params{
		PerTokenSeconds: slope,
		PerScoreSeconds: perScoreSeconds,
		PerBatchSeconds: intercept,
	}, nil
}

// CalibrateFull fits all three encode-side constants (per-token, per-score,
// per-batch) simultaneously from measurements by two-regressor least
// squares. Measurements must vary token count and score area independently
// (e.g. same tokens at different slot partitions), or the fit is singular.
func CalibrateFull(ms []Measurement) (Params, error) {
	if len(ms) < 3 {
		return Params{}, fmt.Errorf("cost: need at least 3 measurements, got %d", len(ms))
	}
	x1 := make([]float64, len(ms))
	x2 := make([]float64, len(ms))
	ys := make([]float64, len(ms))
	for i, m := range ms {
		x1[i] = float64(m.Tokens)
		x2[i] = float64(m.ScoreArea)
		ys[i] = m.Seconds
	}
	var a, b, c float64
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("cost: calibration failed: %v", r)
			}
		}()
		a, b, c = stats.LinearFit2(x1, x2, ys)
		return nil
	}()
	if err != nil {
		return Params{}, err
	}
	if a <= 0 {
		return Params{}, fmt.Errorf("cost: non-positive per-token time %g", a)
	}
	if b < 0 {
		b = 0 // score term lost in noise; clamp rather than go negative
	}
	if c < 0 {
		c = 0
	}
	return Params{PerTokenSeconds: a, PerScoreSeconds: b, PerBatchSeconds: c}, nil
}
