package cost

import (
	"testing"

	"tcb/internal/batch"
	"tcb/internal/model"
)

func TestPrefixSavings(t *testing.T) {
	p := DefaultParams(model.TestConfig(100))
	if s := p.PrefixSavings(0); s != 0 {
		t.Fatalf("no cached tokens must save nothing, got %g", s)
	}
	if s := p.PrefixSavings(-3); s != 0 {
		t.Fatalf("negative cached length must save nothing, got %g", s)
	}
	want := 16*p.PerTokenSeconds + 256*p.PerScoreSeconds
	if got := p.PrefixSavings(16); got != want {
		t.Fatalf("PrefixSavings(16) = %g, want %g", got, want)
	}
	if p.PrefixSavings(32) <= p.PrefixSavings(16) {
		t.Fatal("savings must grow with cached length")
	}
}

func TestBatchPrefixSavings(t *testing.T) {
	p := Params{PerTokenSeconds: 1e-4, PerScoreSeconds: 1e-7}
	b := &batch.Batch{Scheme: batch.Concat, Rows: []batch.Row{{
		PadTo: 64,
		Items: []batch.Item{
			{ID: 1, Len: 10, PrefixLen: 8, CachedLen: 8}, // hit: suffix resident
			{ID: 2, Len: 30, PrefixLen: 8, CachedLen: 0}, // cold declared prefix
			{ID: 3, Len: 12},                             // no prefix
		},
	}}}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	want := p.PrefixSavings(8)
	if got := p.BatchPrefixSavings(b); got != want {
		t.Fatalf("BatchPrefixSavings = %g, want %g (only the hit item saves)", got, want)
	}
}
