package cost

import (
	"math"
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/model"
)

func testCfg() model.Config { return model.TestConfig(100) }

func TestTokenFLOPsPositiveAndScales(t *testing.T) {
	small := TokenFLOPs(testCfg())
	if small <= 0 {
		t.Fatal("token FLOPs must be positive")
	}
	big := TokenFLOPs(model.PaperConfig(100))
	if big <= small {
		t.Fatal("paper config must cost more per token")
	}
	// Doubling d roughly quadruples the projection cost.
	cfg2 := testCfg()
	cfg2.DModel *= 2
	cfg2.DFF *= 2
	if TokenFLOPs(cfg2) < 3*small {
		t.Fatalf("scaling check: %v vs %v", TokenFLOPs(cfg2), small)
	}
}

func TestScoreFLOPs(t *testing.T) {
	cfg := testCfg()
	want := float64(cfg.EncLayers+2*cfg.DecLayers) * 4 * float64(cfg.DModel)
	if got := ScoreFLOPs(cfg); got != want {
		t.Fatalf("ScoreFLOPs = %v, want %v", got, want)
	}
}

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams(testCfg())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Params{PerTokenSeconds: 0}
	if bad.Validate() == nil {
		t.Fatal("zero per-token time should fail")
	}
}

func concatBatch(rowLen int, rows int, lens ...int) *batch.Batch {
	items := make([]batch.Item, len(lens))
	for i, l := range lens {
		items[i] = batch.Item{ID: int64(i + 1), Len: l}
	}
	b, rest := batch.PackConcat(items, rows, rowLen)
	if len(rest) != 0 {
		panic("batch did not fit")
	}
	return b
}

func TestBatchTimeEmptyIsZero(t *testing.T) {
	p := DefaultParams(testCfg())
	if got := p.BatchTime(&batch.Batch{Scheme: batch.Concat}); got != 0 {
		t.Fatalf("empty batch time = %v", got)
	}
}

func TestBatchTimeMonotoneInPadding(t *testing.T) {
	p := DefaultParams(testCfg())
	// Same items, wider rows → more padded tokens → strictly more time
	// (cost-model invariant 6 in DESIGN.md).
	narrow := concatBatch(50, 2, 20, 20)
	wide := concatBatch(100, 2, 20, 20)
	if p.BatchTime(wide) <= p.BatchTime(narrow) {
		t.Fatalf("padding must cost time: wide %v <= narrow %v",
			p.BatchTime(wide), p.BatchTime(narrow))
	}
}

func TestSlottingNeverSlower(t *testing.T) {
	p := DefaultParams(testCfg())
	items := []batch.Item{{ID: 1, Len: 20}, {ID: 2, Len: 20}, {ID: 3, Len: 20}, {ID: 4, Len: 20}}
	pure, rest := batch.PackConcat(items, 1, 80)
	if len(rest) != 0 {
		t.Fatal("pure pack failed")
	}
	slotted, rest := batch.PackSlotted(items, 1, 80, 20)
	if len(rest) != 0 {
		t.Fatal("slotted pack failed")
	}
	if p.BatchTime(slotted) >= p.BatchTime(pure) {
		t.Fatalf("slotting must reduce time: slotted %v >= pure %v",
			p.BatchTime(slotted), p.BatchTime(pure))
	}
}

func TestPlanTimeSumsSubBatches(t *testing.T) {
	p := DefaultParams(testCfg())
	b1 := concatBatch(50, 1, 30)
	b2 := concatBatch(50, 1, 40)
	want := p.BatchTime(b1) + p.BatchTime(b2)
	if got := p.PlanTime([]*batch.Batch{b1, b2}); math.Abs(got-want) > 1e-15 {
		t.Fatalf("plan time = %v, want %v", got, want)
	}
}

func TestTurboPaysPerGroupOverhead(t *testing.T) {
	p := DefaultParams(testCfg())
	items := []batch.Item{{ID: 1, Len: 5}, {ID: 2, Len: 6}, {ID: 3, Len: 90}, {ID: 4, Len: 95}}
	plan, rest := batch.PackTurbo(items, batch.TurboParams{MaxRows: 64, MaxLen: 100, Overhead: 20})
	if len(rest) != 0 {
		t.Fatal("turbo pack failed")
	}
	if len(plan) < 2 {
		t.Fatalf("expected ≥2 turbo groups, got %d", len(plan))
	}
	total := p.PlanTime(plan)
	// The plan pays batch overhead and decode rounds once per group.
	var want float64
	for _, b := range plan {
		want += p.PerBatchSeconds +
			float64(b.TotalTokens())*p.PerTokenSeconds +
			float64(b.ScoreArea())*p.PerScoreSeconds +
			p.DecodeRounds*(p.PerRoundSeconds+float64(b.NumItems())*p.PerSegmentRoundSeconds)
	}
	if math.Abs(total-want) > 1e-12 {
		t.Fatalf("overhead accounting wrong: %v vs %v", total, want)
	}
}

func TestDecodeTermsScaleWithItems(t *testing.T) {
	p := Params{
		PerTokenSeconds: 1e-6, PerScoreSeconds: 0, PerBatchSeconds: 0,
		DecodeRounds: 10, PerSegmentRoundSeconds: 1e-4, PerRoundSeconds: 1e-3,
	}
	one := concatBatch(100, 1, 20)
	five := concatBatch(100, 1, 20, 20, 20, 20, 20)
	// Same single row padded to 100 (identical encode work), 5× the
	// requests: decode grows by exactly 4 requests × rounds × per-segment.
	wantDelta := 10 * 1e-4 * 4
	gotDelta := p.BatchTime(five) - p.BatchTime(one)
	if math.Abs(gotDelta-wantDelta) > 1e-12 {
		t.Fatalf("decode delta = %v, want %v", gotDelta, wantDelta)
	}
}

func TestValidateRejectsNegativeDecodeTerms(t *testing.T) {
	p := DefaultParams(testCfg())
	p.DecodeRounds = -1
	if p.Validate() == nil {
		t.Fatal("negative decode rounds should fail")
	}
}

func TestCalibrateRecoversConstants(t *testing.T) {
	// Synthesize measurements from known constants and recover them.
	truth := Params{PerTokenSeconds: 2e-6, PerScoreSeconds: 3e-9, PerBatchSeconds: 5e-4}
	var ms []Measurement
	for _, tokens := range []int{100, 500, 1000, 5000} {
		area := tokens * 10
		secs := truth.PerBatchSeconds +
			float64(tokens)*truth.PerTokenSeconds +
			float64(area)*truth.PerScoreSeconds
		ms = append(ms, Measurement{Tokens: tokens, ScoreArea: area, Seconds: secs})
	}
	got, err := Calibrate(ms, truth.PerScoreSeconds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.PerTokenSeconds-truth.PerTokenSeconds) > 1e-12 {
		t.Fatalf("per-token = %v, want %v", got.PerTokenSeconds, truth.PerTokenSeconds)
	}
	if math.Abs(got.PerBatchSeconds-truth.PerBatchSeconds) > 1e-9 {
		t.Fatalf("per-batch = %v, want %v", got.PerBatchSeconds, truth.PerBatchSeconds)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate([]Measurement{{Tokens: 1, Seconds: 1}}, 0); err == nil {
		t.Fatal("single measurement should fail")
	}
	// Decreasing time with tokens → non-physical slope.
	ms := []Measurement{
		{Tokens: 100, Seconds: 2},
		{Tokens: 200, Seconds: 1},
	}
	if _, err := Calibrate(ms, 0); err == nil {
		t.Fatal("negative slope should fail")
	}
}

func TestCalibrateClampsNegativeIntercept(t *testing.T) {
	ms := []Measurement{
		{Tokens: 100, Seconds: 0.0001},
		{Tokens: 200, Seconds: 0.0003},
	}
	p, err := Calibrate(ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.PerBatchSeconds < 0 {
		t.Fatalf("intercept must clamp to 0, got %v", p.PerBatchSeconds)
	}
}

func TestOverlapSavingsZeroForDense(t *testing.T) {
	p := DefaultParams(testCfg())
	b := concatBatch(100, 2, 20, 20)
	if s := p.OverlapSavings(b); s != 0 {
		t.Fatalf("dense scheme overlap = %v, want 0", s)
	}
}

func TestOverlapSavingsPositiveForHeterogeneousSlots(t *testing.T) {
	p := DefaultParams(testCfg())
	// Two slots with very different load: 5 vs 20 tokens.
	items := []batch.Item{{ID: 1, Len: 5}, {ID: 2, Len: 20}}
	b, rest := batch.PackSlotted(items, 1, 40, 20)
	if len(rest) != 0 {
		t.Fatal("pack failed")
	}
	s := p.OverlapSavings(b)
	if s <= 0 {
		t.Fatalf("heterogeneous slots should overlap, got %v", s)
	}
	if load := p.LoadFraction * p.PerBatchSeconds; s > load+1e-15 {
		t.Fatalf("savings %v exceed the load cost %v", s, load)
	}
}

func TestOverlapSavingsZeroForUniformSlots(t *testing.T) {
	p := DefaultParams(testCfg())
	// Identical slots finish together: no window.
	items := []batch.Item{{ID: 1, Len: 10}, {ID: 2, Len: 10}}
	b, rest := batch.PackSlotted(items, 1, 20, 10)
	if len(rest) != 0 {
		t.Fatal("pack failed")
	}
	if s := p.OverlapSavings(b); s != 0 {
		t.Fatalf("uniform slots overlap = %v, want 0", s)
	}
}

func TestOverlapSavingsEmptyBatch(t *testing.T) {
	p := DefaultParams(testCfg())
	if s := p.OverlapSavings(&batch.Batch{Scheme: batch.SlottedConcat, SlotSize: 10}); s != 0 {
		t.Fatalf("empty batch overlap = %v", s)
	}
}

func TestDecodeDuration(t *testing.T) {
	p := Params{PerTokenSeconds: 1, DecodeRounds: 10, PerRoundSeconds: 2, PerSegmentRoundSeconds: 3}
	b := concatBatch(100, 1, 20, 20)
	want := 10 * (2 + 2*3.0)
	if got := p.DecodeDuration(b); got != want {
		t.Fatalf("decode duration = %v, want %v", got, want)
	}
}

func TestCalibrateFullRecoversConstants(t *testing.T) {
	truth := Params{PerTokenSeconds: 3e-6, PerScoreSeconds: 2e-9, PerBatchSeconds: 4e-4}
	var ms []Measurement
	// Vary tokens and area independently.
	for _, tokens := range []int{100, 400, 1600} {
		for _, areaFactor := range []int{5, 40} {
			area := tokens * areaFactor
			ms = append(ms, Measurement{
				Tokens: tokens, ScoreArea: area,
				Seconds: truth.PerBatchSeconds +
					float64(tokens)*truth.PerTokenSeconds +
					float64(area)*truth.PerScoreSeconds,
			})
		}
	}
	got, err := CalibrateFull(ms)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.PerTokenSeconds-truth.PerTokenSeconds) > 1e-12 ||
		math.Abs(got.PerScoreSeconds-truth.PerScoreSeconds) > 1e-13 ||
		math.Abs(got.PerBatchSeconds-truth.PerBatchSeconds) > 1e-9 {
		t.Fatalf("fit = %+v, want %+v", got, truth)
	}
}

func TestCalibrateFullErrors(t *testing.T) {
	if _, err := CalibrateFull(nil); err == nil {
		t.Fatal("empty input should fail")
	}
	// Collinear tokens/area → singular.
	var ms []Measurement
	for _, tokens := range []int{100, 200, 300, 400} {
		ms = append(ms, Measurement{Tokens: tokens, ScoreArea: tokens * 2, Seconds: float64(tokens)})
	}
	if _, err := CalibrateFull(ms); err == nil {
		t.Fatal("collinear design should fail")
	}
}

func TestPredictBatchDurationMatchesBatchTime(t *testing.T) {
	p := DefaultParams(testCfg())
	b := concatBatch(50, 2, 20, 20)
	want := time.Duration(p.BatchTime(b) * float64(time.Second))
	if got := p.PredictBatchDuration(b); got != want || got <= 0 {
		t.Fatalf("PredictBatchDuration = %v, want %v (> 0)", got, want)
	}
}

func TestPredictStageDurationsSumToBatchTime(t *testing.T) {
	p := DefaultParams(testCfg())
	b := concatBatch(50, 2, 20, 20, 10)
	prep, comp, clean := p.PredictStageDurations(b)
	if prep <= 0 || comp <= 0 || clean <= 0 {
		t.Fatalf("stage durations must be positive: %v %v %v", prep, comp, clean)
	}
	total := p.PredictBatchDuration(b)
	sum := prep + comp + clean
	if diff := (sum - total).Abs(); diff > time.Microsecond {
		t.Fatalf("stages sum to %v, batch budget is %v", sum, total)
	}
	// The load fraction governs the prepare:cleanup split.
	wantRatio := p.LoadFraction / (1 - p.LoadFraction)
	gotRatio := float64(prep) / float64(clean)
	if math.Abs(gotRatio-wantRatio) > 0.01 {
		t.Fatalf("prepare:cleanup = %v, want %v", gotRatio, wantRatio)
	}
}

func TestPredictStageDurationsEmptyBatch(t *testing.T) {
	p := DefaultParams(testCfg())
	prep, comp, clean := p.PredictStageDurations(&batch.Batch{Scheme: batch.Concat})
	if prep != 0 || comp != 0 || clean != 0 {
		t.Fatalf("empty batch stages = %v %v %v, want zeros", prep, comp, clean)
	}
}
