package engine

import (
	"testing"

	"tcb/internal/cost"
)

func TestMeasureCostProducesFittableGrid(t *testing.T) {
	e := testEngine(t, 0) // encode-only
	ms, err := MeasureCost(e, 80, 10, []int{1, 2, 4}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 { // 3 row counts × 2 partitions
		t.Fatalf("measurements = %d, want 6", len(ms))
	}
	// The grid must vary area at fixed tokens (that is its whole point).
	sameTokensDiffArea := false
	for i := 0; i < len(ms); i += 2 {
		if ms[i].Tokens == ms[i+1].Tokens && ms[i].ScoreArea != ms[i+1].ScoreArea {
			sameTokensDiffArea = true
		}
	}
	if !sameTokensDiffArea {
		t.Fatalf("grid lacks independent area variation: %+v", ms)
	}
	p, err := cost.CalibrateFull(ms)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("fitted params invalid: %v (%+v)", err, p)
	}
	// The fit must roughly predict a fresh measurement (generous bound —
	// wall-clock on CI is noisy).
	fresh, err := MeasureCost(e, 80, 10, []int{3}, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range fresh {
		pred := p.PerBatchSeconds +
			float64(m.Tokens)*p.PerTokenSeconds +
			float64(m.ScoreArea)*p.PerScoreSeconds
		if pred <= 0 {
			t.Fatalf("non-positive prediction %v for %+v", pred, m)
		}
		ratio := pred / m.Seconds
		if ratio < 0.2 || ratio > 5 {
			t.Fatalf("prediction %v vs measured %v (ratio %v) out of band", pred, m.Seconds, ratio)
		}
	}
}

func TestMeasureCostValidation(t *testing.T) {
	e := testEngine(t, 0)
	if _, err := MeasureCost(e, 80, 7, []int{1}, 1, 1); err == nil {
		t.Fatal("non-dividing reqLen should fail")
	}
	if _, err := MeasureCost(e, 80, 10, []int{0}, 1, 1); err == nil {
		t.Fatal("zero rows should fail")
	}
	dec := testEngine(t, 3)
	if _, err := MeasureCost(dec, 80, 10, []int{1}, 1, 1); err == nil {
		t.Fatal("decoding engine should be rejected")
	}
}
