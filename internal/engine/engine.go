// Package engine executes batch layouts on the real Go transformer: it is
// the TCB "customized inference engine" of Fig. 3. Given a batch.Batch and
// the token sequences of its items, the engine builds each row's
// concatenated layout, runs the ConcatBatching-aware encoder and the
// auto-regressive decoder, and returns per-request outputs together with
// wall-clock timing and simulated-memory accounting.
//
// The engine supports all batching schemes: Naive and Turbo rows hold a
// single segment (the padded baseline layouts), Concat rows hold many
// segments with dense masked attention, and SlottedConcat rows use the
// per-slot attention of §4.2 plus early memory cleaning.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tcb/internal/batch"
	"tcb/internal/gpu"
	"tcb/internal/model"
	"tcb/internal/prefixcache"
	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// Engine runs batches on a model.
type Engine struct {
	Model *model.Model
	// MaxNew bounds generated tokens per request (decoder steps).
	MaxNew int
	// OutputCap, when non-nil, bounds each request's generation by a
	// function of its input length (further clamped by MaxNew). Seq2seq
	// services typically produce output proportional to input, which is
	// what staggers finish times inside a batch (§4.2.2).
	OutputCap func(inputLen int) int
	// UseCache selects the KV-cached incremental decoder (O(T) token
	// passes per segment) instead of the mask-based re-run decoder
	// (O(T²)). Outputs are identical; the cache is per segment, so it is
	// valid under every batching scheme.
	UseCache bool
	// FuseDecode (requires UseCache) decodes the whole batch through one
	// fused BatchDecodeState: per decode step, every row's live segments
	// advance together through single batch-wide GEMMs per layer — the GEMM
	// shapes of a real B×L launch — instead of B independent per-row decode
	// streams. Rows still encode in parallel. Outputs are token-identical
	// to per-row decoding; New enables it by default, and the tcb-bench
	// -fusedecode=false escape hatch keeps the per-row path for A/B runs.
	FuseDecode bool
	// BytesPerToken is the simulated activation footprint used for the
	// memory reports (d_model × 4 bytes × a small constant in a real
	// system; any positive value preserves the comparisons).
	BytesPerToken int64
	// Mem, when non-nil, enforces a device-memory budget: each batch
	// reserves TotalTokens × BytesPerToken of activation memory for the
	// duration of its run and Run fails with the allocator's error when
	// the batch does not fit — the admission behaviour a real device
	// shows instead of silently thrashing.
	Mem *gpu.MemoryManager
	// Pool is the persistent kernel worker pool every row-sharded tensor
	// kernel dispatches onto. New wires the shared process pool; the field
	// exists so ownership is explicit (the engine's compute runs on it,
	// the serve pipeline reserves cores away from it via tensor.Reserve).
	Pool *tensor.Pool
	// Quantize routes every projection (attention, FFN, logits) through the
	// int8 per-output-channel quantized GEMM instead of the float32 kernels.
	// Opt-in: outputs carry a bounded quantization error rather than the
	// float32 path's bitwise-identity guarantee. The model is quantized
	// lazily on first Prepare (once per shared Params, race-safe).
	Quantize bool
	// PrefixCache, when non-nil, is the shared-prompt prefix KV cache.
	// Items with CachedLen > 0 attach the cached prefix's frozen cross K/V
	// to their decode segment instead of re-encoding the prefix (the caller
	// must hold a pin for the duration of the launch; see prefixcache);
	// items with a declared-but-uncached prefix have their prefix rows
	// frozen into the cache once they complete. Prefix items require
	// UseCache (the KV-cached decoder); everything else is unaffected.
	PrefixCache *prefixcache.Cache
}

// New returns an engine over m generating at most maxNew tokens per request.
func New(m *model.Model, maxNew int) *Engine {
	return &Engine{
		Model: m, MaxNew: maxNew, FuseDecode: true,
		BytesPerToken: int64(m.Cfg.DModel) * 4,
		Pool:          tensor.DefaultPool(),
	}
}

// Result is the output for one request.
type Result struct {
	ID     int64
	Output []int // generated token ids, EOS excluded
	Steps  int   // decoder steps until this request finished
}

// Report summarizes one batch execution.
type Report struct {
	Results []Result
	Elapsed time.Duration
	// Memory reports are present when the batch decodes (MaxNew > 0):
	// WholeBatch is the §4.2.2 baseline, Early the slotted policy (only
	// for SlottedConcat batches; zero value otherwise).
	WholeBatch gpu.CleaningReport
	Early      gpu.CleaningReport
	HasEarly   bool
	// Refill is present on refill-enabled launches (RunPreparedRefill).
	Refill *RefillReport
}

// Run executes b. tokens maps item IDs to their input token sequences; the
// sequence length must equal the item's Len. Rows execute in parallel —
// the batch dimension of a real GPU launch. Run is Prepare + RunPrepared +
// Release in one call; the serve pipeline drives the three pieces
// separately so staging and cleanup overlap neighbouring batches' compute.
func (e *Engine) Run(b *batch.Batch, tokens map[int64][]int) (*Report, error) {
	p, err := e.Prepare(b, tokens)
	if err != nil {
		return nil, err
	}
	defer p.Release()
	return e.RunPrepared(p)
}

// Prepared is a batch staged for execution: validated, its device memory
// reserved, and every row's host-side tensors built (concatenated + padded
// token ids, concat layout, slot descriptors, generation caps). Staging is
// pure host work touching no model state, so the pipeline's prepare stage
// runs it for batch t+1 while batch t computes.
type Prepared struct {
	Batch  *batch.Batch
	Tokens map[int64][]int
	// DeferCleaning makes RunPrepared skip the memory-cleaning simulations
	// (the §4.2.2 whole-batch vs early-cleaning reports); the caller runs
	// FinishReport later — the pipeline's cleanup stage, overlapped with
	// the next batch's compute.
	DeferCleaning bool

	mode model.AttentionMode
	// Staged per non-empty row, in batch-row order. layouts is the decode
	// (item) layout — one segment per item, spanning its resident tokens.
	// encLayouts is the encoder layout: identical except that items with a
	// declared, uncached prefix are split into two segments (prefix, then
	// suffix), each with its own positional-encoding restart and isolation.
	// Items without prefixes produce identical layouts and encLayouts is
	// the same slice value — the pre-prefix path, bit for bit.
	rows       []batch.Row
	rowTokens  [][]int
	layouts    []model.RowLayout
	encLayouts []model.RowLayout
	slots      [][]model.Slot
	caps       [][]int
	// prefixes[ri][i] is the frozen prefix attached to row ri's item i
	// (cache hits only; nil entries otherwise). inserts lists the items
	// whose freshly encoded prefix rows should be frozen into the cache
	// after the run completes.
	prefixes [][]*model.PrefixKV
	inserts  []prefixInsert

	eng      *Engine
	memTag   string
	released atomic.Bool
}

// prefixInsert locates a declared-but-uncached prefix inside a staged row:
// rows [start, start+n) of row ri's encoder output are item id's prefix.
type prefixInsert struct {
	ri    int
	start int
	n     int
	id    int64
}

// Prepare validates b, reserves its device memory, and stages the host-side
// row tensors. The reservation is held until Release; every successful
// Prepare must be paired with Release (RunPrepared never frees it, so a
// retried batch can be released before its requeue).
func (e *Engine) Prepare(b *batch.Batch, tokens map[int64][]int) (*Prepared, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if e.Quantize {
		e.Model.EnsureQuantized()
	}
	for _, it := range b.Items() {
		seq, ok := tokens[it.ID]
		if !ok {
			return nil, fmt.Errorf("engine: no tokens for item %d", it.ID)
		}
		// tokens always carries the FULL request; on a prefix-cache hit only
		// the suffix (it.Len tokens) is resident in the row.
		if len(seq) != it.Len+it.CachedLen {
			return nil, fmt.Errorf("engine: item %d has %d tokens, layout says %d",
				it.ID, len(seq), it.Len+it.CachedLen)
		}
		if it.PrefixLen > 0 && !e.UseCache {
			return nil, fmt.Errorf("engine: item %d declares a prefix but the engine runs without the KV-cached decoder", it.ID)
		}
		if it.CachedLen > 0 && e.PrefixCache == nil {
			return nil, fmt.Errorf("engine: item %d expects a cached prefix but the engine has no prefix cache", it.ID)
		}
	}
	p := &Prepared{Batch: b, Tokens: tokens, mode: model.AttDense, eng: e}
	if b.Scheme == batch.SlottedConcat {
		p.mode = model.AttSlotted
	}
	for _, row := range b.Rows {
		if len(row.Items) == 0 {
			continue
		}
		ri := len(p.rows)
		rowTokens, layout, encLayout, slots, prefixes, err := e.rowLayout(b, row, tokens, p.mode, ri, &p.inserts)
		if err != nil {
			return nil, err
		}
		p.rows = append(p.rows, row)
		p.rowTokens = append(p.rowTokens, rowTokens)
		p.layouts = append(p.layouts, layout)
		p.encLayouts = append(p.encLayouts, encLayout)
		p.slots = append(p.slots, slots)
		p.caps = append(p.caps, e.rowCaps(row))
		p.prefixes = append(p.prefixes, prefixes)
	}
	if e.Mem != nil && b.TotalTokens() > 0 {
		// Tag by a fresh launch id, not the batch pointer: concurrent runs
		// on the same *batch.Batch would collide on Alloc/Free under a
		// pointer-derived tag.
		tag := fmt.Sprintf("launch-%d", launchSeq.Add(1))
		if err := e.Mem.Alloc(tag, int64(b.TotalTokens())*e.BytesPerToken); err != nil {
			return nil, err
		}
		p.memTag = tag
	}
	return p, nil
}

// Release frees the batch's device-memory reservation. Idempotent and safe
// on a nil receiver, so failure paths can release unconditionally before
// requeueing the batch's requests.
func (p *Prepared) Release() {
	if p == nil || p.released.Swap(true) {
		return
	}
	if p.memTag != "" {
		_ = p.eng.Mem.Free(p.memTag)
	}
}

// RunPrepared executes a staged batch. It does not release the memory
// reservation (Release does) and, with DeferCleaning set, leaves the
// cleaning simulations to FinishReport.
func (e *Engine) RunPrepared(p *Prepared) (*Report, error) {
	start := time.Now()
	var results []Result
	var runErr error
	if e.MaxNew > 0 && e.UseCache && e.FuseDecode {
		results, runErr = e.runFused(p)
	} else {
		results, runErr = e.runPerRow(p)
	}
	if runErr != nil {
		return nil, runErr
	}
	rep := &Report{Elapsed: time.Since(start), Results: results}
	if !p.DeferCleaning {
		if err := p.FinishReport(rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// FinishReport fills rep's memory-cleaning simulations (whole-batch
// baseline, and the early policy for slotted batches). RunPrepared calls it
// inline unless DeferCleaning moved it to the pipeline's cleanup stage.
func (p *Prepared) FinishReport(rep *Report) error {
	e := p.eng
	if e.MaxNew <= 0 || len(rep.Results) == 0 {
		return nil
	}
	finish := make(map[int64]int)
	for _, r := range rep.Results {
		finish[r.ID] = r.Steps
	}
	whole, err := gpu.SimulateWholeBatchCleaning(p.Batch, finish, e.BytesPerToken)
	if err != nil {
		return err
	}
	rep.WholeBatch = whole
	if p.Batch.Scheme == batch.SlottedConcat {
		early, err := gpu.SimulateEarlyCleaning(p.Batch, finish, e.BytesPerToken)
		if err != nil {
			return err
		}
		rep.Early = early
		rep.HasEarly = true
	}
	return nil
}

// launchSeq numbers engine launches process-wide for memory-manager tags.
var launchSeq atomic.Uint64

// rowLayout concatenates a row's item tokens (resident suffix only for
// prefix-cache hits), pads to the row capacity and builds the decode (item)
// layout, the encoder layout (declared-but-uncached prefixes split into
// their own segments), the slot descriptors (for slotted batches), the
// attached frozen prefixes (for hits) and the pending cache inserts (for
// cold declared prefixes).
func (e *Engine) rowLayout(b *batch.Batch, row batch.Row, tokens map[int64][]int, mode model.AttentionMode, ri int, inserts *[]prefixInsert) (rowTokens []int, layout, encLayout model.RowLayout, slots []model.Slot, prefixes []*model.PrefixKV, err error) {
	lengths := make([]int, len(row.Items))
	rowTokens = make([]int, 0, row.PadTo)
	encLengths := make([]int, 0, len(row.Items))
	segCounts := make([]int, len(row.Items))
	split := false
	start := 0
	for i, it := range row.Items {
		lengths[i] = it.Len
		seq := tokens[it.ID]
		rowTokens = append(rowTokens, seq[it.CachedLen:]...)
		segCounts[i] = 1
		switch {
		case it.CachedLen > 0:
			// Hit: only the suffix is resident; the decode segment inherits
			// the frozen prefix K/V. The pin the serving layer took at
			// admission guarantees residency here.
			_, kv, ok := e.PrefixCache.Peek(seq, it.CachedLen)
			if !ok {
				return nil, model.RowLayout{}, model.RowLayout{}, nil, nil,
					fmt.Errorf("engine: item %d's cached prefix is not resident (pin not held?)", it.ID)
			}
			if prefixes == nil {
				prefixes = make([]*model.PrefixKV, len(row.Items))
			}
			prefixes[i] = kv
			encLengths = append(encLengths, it.Len)
		case it.PrefixLen > 0:
			// Cold declared prefix: encode prefix and suffix as two isolated
			// segments (separate PE restart each) so the prefix rows are
			// position-independent and cacheable; freeze them after the run.
			encLengths = append(encLengths, it.PrefixLen, it.Len-it.PrefixLen)
			segCounts[i] = 2
			split = true
			if e.PrefixCache != nil && !e.PrefixCache.Contains(seq, it.PrefixLen) {
				*inserts = append(*inserts, prefixInsert{ri: ri, start: start, n: it.PrefixLen, id: it.ID})
			}
		default:
			encLengths = append(encLengths, it.Len)
		}
		start += it.Len
	}
	for len(rowTokens) < row.PadTo {
		rowTokens = append(rowTokens, vocab.PadID)
	}
	layout = model.ConcatLayout(lengths, row.PadTo)
	encLayout = layout
	if split {
		encLayout = model.ConcatLayout(encLengths, row.PadTo)
	}
	if mode == model.AttSlotted {
		slots = e.slotsForRow(b, row, encLayout, segCounts)
	}
	return rowTokens, layout, encLayout, slots, prefixes, nil
}

// rowCaps returns the per-item generation caps of a row (MaxNew clamped by
// OutputCap).
func (e *Engine) rowCaps(row batch.Row) []int {
	caps := make([]int, len(row.Items))
	for i, it := range row.Items {
		caps[i] = e.MaxNew
		if e.OutputCap != nil {
			// The cap depends on the request's full input length — a cache
			// hit must generate exactly what a cold run would.
			if c := e.OutputCap(it.Len + it.CachedLen); c < caps[i] {
				caps[i] = c
			}
		}
		if caps[i] < 0 {
			caps[i] = 0
		}
	}
	return caps
}

// runPerRow executes every staged row end to end in its own goroutine — the
// batch dimension of a real GPU launch, and the escape-hatch decode path
// when fused decoding is disabled.
func (e *Engine) runPerRow(p *Prepared) ([]Result, error) {
	type rowOut struct {
		results []Result
		err     error
	}
	outs := make([]rowOut, len(p.rows))
	var wg sync.WaitGroup
	for ri := range p.rows {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			res, err := e.runRow(p, ri)
			outs[ri] = rowOut{res, err}
		}(ri)
	}
	wg.Wait()
	var results []Result
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		results = append(results, o.results...)
	}
	return results, nil
}

// runFused executes the batch with a batch-wide fused decode: rows encode in
// parallel as before, then every row's segments decode together through one
// BatchDecodeState — one GEMM per layer per step across all rows instead of
// one small-GEMM stream per row.
func (e *Engine) runFused(p *Prepared) ([]Result, error) {
	if len(p.rows) == 0 {
		return nil, nil
	}
	// encodeRows (refill.go) uses a fresh workspace per row goroutine:
	// prepare-stage staging never aliases compute-stage buffers, so a
	// pipelined prepare for batch t+1 cannot stomp batch t's encode.
	decRows := e.encodeRows(p)

	gen, err := e.Model.GenerateBatchCached(decRows, p.caps)
	if err != nil {
		return nil, err
	}
	for ri := range p.rows {
		e.freezeRowPrefixes(p, ri, decRows[ri].EncOut)
	}
	var results []Result
	for ri, row := range p.rows {
		for i, it := range row.Items {
			results = append(results, Result{ID: it.ID, Output: gen[ri][i].Tokens, Steps: gen[ri][i].Steps})
		}
	}
	return results, nil
}

// freezeRowPrefixes runs row ri's staged insert-on-completion jobs: each
// cold declared prefix's encoder rows are copied out of the row, projected
// into frozen cross K/V, and offered to the cache. Failures (over budget,
// out of device memory) just mean the next identical request encodes cold
// again.
func (e *Engine) freezeRowPrefixes(p *Prepared, ri int, enc *tensor.Matrix) {
	if e.PrefixCache == nil || enc == nil {
		return
	}
	for _, job := range p.inserts {
		if job.ri != ri {
			continue
		}
		seq := p.Tokens[job.id]
		if e.PrefixCache.Contains(seq, job.n) {
			continue // a concurrent launch froze it first
		}
		rows := enc.Slice(job.start, job.start+job.n) // deep copy; cache owns it
		kv, err := e.Model.BuildPrefixKV(rows)
		if err != nil {
			continue
		}
		e.PrefixCache.Insert(seq, job.n, rows, kv)
	}
}

// runRow executes one staged row: encode, decode, split results per item.
func (e *Engine) runRow(p *Prepared, ri int) ([]Result, error) {
	row := p.rows[ri]
	// One workspace per row goroutine: layer intermediates are checked out
	// and released inside the encoder/decoder, and the buffers themselves
	// are recycled across batches through the package pool.
	ws := tensor.NewWorkspace()
	defer ws.Close()
	encOut := e.Model.EncodeRowWS(p.rowTokens[ri], p.encLayouts[ri], p.slots[ri], p.mode, true, ws)
	if e.MaxNew == 0 {
		e.freezeRowPrefixes(p, ri, encOut)
		out := make([]Result, len(row.Items))
		for i, it := range row.Items {
			out[i] = Result{ID: it.ID}
		}
		return out, nil
	}
	var gen []model.GenerateResult
	if e.UseCache {
		var err error
		gen, err = e.Model.GenerateRowCachedPrefix(encOut, p.layouts[ri], p.prefixes[ri], p.caps[ri])
		if err != nil {
			return nil, err
		}
	} else {
		gen = e.Model.GenerateRowCapped(encOut, p.layouts[ri], p.slots[ri], p.caps[ri], p.mode)
	}
	e.freezeRowPrefixes(p, ri, encOut)
	out := make([]Result, len(row.Items))
	for i, it := range row.Items {
		out[i] = Result{ID: it.ID, Output: gen[i].Tokens, Steps: gen[i].Steps}
	}
	return out, nil
}

// slotsForRow converts the batch's physical slot grouping into the model's
// Slot descriptors over the encoder layout. segCounts[i] is the number of
// encoder segments item i contributes (2 when a declared prefix splits it,
// 1 otherwise); the item's segments are consecutive, so its slot span is
// unchanged by the split — the prefix/suffix isolation happens inside the
// slot via the layout's segment IDs.
func (e *Engine) slotsForRow(b *batch.Batch, row batch.Row, layout model.RowLayout, segCounts []int) []model.Slot {
	groups := b.SlotGroups(row)
	var slots []model.Slot
	seg, item := 0, 0
	for _, g := range groups {
		var s model.Slot
		first := true
		for range g {
			for k := 0; k < segCounts[item]; k++ {
				sg := layout.Segments[seg]
				if first {
					s.Start = sg.Start
					first = false
				}
				s.SegIdx = append(s.SegIdx, seg)
				s.Len = sg.End() - s.Start
				seg++
			}
			item++
		}
		if !first {
			slots = append(slots, s)
		}
	}
	return slots
}

// RunSingle serves one request alone (no batching): the correctness
// reference for the equivalence tests and examples.
func (e *Engine) RunSingle(id int64, tokens []int) (Result, error) {
	items := []batch.Item{{ID: id, Len: len(tokens)}}
	b, rest := batch.PackConcat(items, 1, len(tokens))
	if len(rest) != 0 {
		return Result{}, fmt.Errorf("engine: single request did not pack")
	}
	rep, err := e.Run(b, map[int64][]int{id: tokens})
	if err != nil {
		return Result{}, err
	}
	return rep.Results[0], nil
}
