// Package engine executes batch layouts on the real Go transformer: it is
// the TCB "customized inference engine" of Fig. 3. Given a batch.Batch and
// the token sequences of its items, the engine builds each row's
// concatenated layout, runs the ConcatBatching-aware encoder and the
// auto-regressive decoder, and returns per-request outputs together with
// wall-clock timing and simulated-memory accounting.
//
// The engine supports all batching schemes: Naive and Turbo rows hold a
// single segment (the padded baseline layouts), Concat rows hold many
// segments with dense masked attention, and SlottedConcat rows use the
// per-slot attention of §4.2 plus early memory cleaning.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tcb/internal/batch"
	"tcb/internal/gpu"
	"tcb/internal/model"
	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// Engine runs batches on a model.
type Engine struct {
	Model *model.Model
	// MaxNew bounds generated tokens per request (decoder steps).
	MaxNew int
	// OutputCap, when non-nil, bounds each request's generation by a
	// function of its input length (further clamped by MaxNew). Seq2seq
	// services typically produce output proportional to input, which is
	// what staggers finish times inside a batch (§4.2.2).
	OutputCap func(inputLen int) int
	// UseCache selects the KV-cached incremental decoder (O(T) token
	// passes per segment) instead of the mask-based re-run decoder
	// (O(T²)). Outputs are identical; the cache is per segment, so it is
	// valid under every batching scheme.
	UseCache bool
	// FuseDecode (requires UseCache) decodes the whole batch through one
	// fused BatchDecodeState: per decode step, every row's live segments
	// advance together through single batch-wide GEMMs per layer — the GEMM
	// shapes of a real B×L launch — instead of B independent per-row decode
	// streams. Rows still encode in parallel. Outputs are token-identical
	// to per-row decoding; New enables it by default, and the tcb-bench
	// -fusedecode=false escape hatch keeps the per-row path for A/B runs.
	FuseDecode bool
	// BytesPerToken is the simulated activation footprint used for the
	// memory reports (d_model × 4 bytes × a small constant in a real
	// system; any positive value preserves the comparisons).
	BytesPerToken int64
	// Mem, when non-nil, enforces a device-memory budget: each batch
	// reserves TotalTokens × BytesPerToken of activation memory for the
	// duration of its run and Run fails with the allocator's error when
	// the batch does not fit — the admission behaviour a real device
	// shows instead of silently thrashing.
	Mem *gpu.MemoryManager
	// Pool is the persistent kernel worker pool every row-sharded tensor
	// kernel dispatches onto. New wires the shared process pool; the field
	// exists so ownership is explicit (the engine's compute runs on it,
	// the serve pipeline reserves cores away from it via tensor.Reserve).
	Pool *tensor.Pool
	// Quantize routes every projection (attention, FFN, logits) through the
	// int8 per-output-channel quantized GEMM instead of the float32 kernels.
	// Opt-in: outputs carry a bounded quantization error rather than the
	// float32 path's bitwise-identity guarantee. The model is quantized
	// lazily on first Prepare (once per shared Params, race-safe).
	Quantize bool
}

// New returns an engine over m generating at most maxNew tokens per request.
func New(m *model.Model, maxNew int) *Engine {
	return &Engine{
		Model: m, MaxNew: maxNew, FuseDecode: true,
		BytesPerToken: int64(m.Cfg.DModel) * 4,
		Pool:          tensor.DefaultPool(),
	}
}

// Result is the output for one request.
type Result struct {
	ID     int64
	Output []int // generated token ids, EOS excluded
	Steps  int   // decoder steps until this request finished
}

// Report summarizes one batch execution.
type Report struct {
	Results []Result
	Elapsed time.Duration
	// Memory reports are present when the batch decodes (MaxNew > 0):
	// WholeBatch is the §4.2.2 baseline, Early the slotted policy (only
	// for SlottedConcat batches; zero value otherwise).
	WholeBatch gpu.CleaningReport
	Early      gpu.CleaningReport
	HasEarly   bool
	// Refill is present on refill-enabled launches (RunPreparedRefill).
	Refill *RefillReport
}

// Run executes b. tokens maps item IDs to their input token sequences; the
// sequence length must equal the item's Len. Rows execute in parallel —
// the batch dimension of a real GPU launch. Run is Prepare + RunPrepared +
// Release in one call; the serve pipeline drives the three pieces
// separately so staging and cleanup overlap neighbouring batches' compute.
func (e *Engine) Run(b *batch.Batch, tokens map[int64][]int) (*Report, error) {
	p, err := e.Prepare(b, tokens)
	if err != nil {
		return nil, err
	}
	defer p.Release()
	return e.RunPrepared(p)
}

// Prepared is a batch staged for execution: validated, its device memory
// reserved, and every row's host-side tensors built (concatenated + padded
// token ids, concat layout, slot descriptors, generation caps). Staging is
// pure host work touching no model state, so the pipeline's prepare stage
// runs it for batch t+1 while batch t computes.
type Prepared struct {
	Batch  *batch.Batch
	Tokens map[int64][]int
	// DeferCleaning makes RunPrepared skip the memory-cleaning simulations
	// (the §4.2.2 whole-batch vs early-cleaning reports); the caller runs
	// FinishReport later — the pipeline's cleanup stage, overlapped with
	// the next batch's compute.
	DeferCleaning bool

	mode model.AttentionMode
	// Staged per non-empty row, in batch-row order.
	rows      []batch.Row
	rowTokens [][]int
	layouts   []model.RowLayout
	slots     [][]model.Slot
	caps      [][]int

	eng      *Engine
	memTag   string
	released atomic.Bool
}

// Prepare validates b, reserves its device memory, and stages the host-side
// row tensors. The reservation is held until Release; every successful
// Prepare must be paired with Release (RunPrepared never frees it, so a
// retried batch can be released before its requeue).
func (e *Engine) Prepare(b *batch.Batch, tokens map[int64][]int) (*Prepared, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if e.Quantize {
		e.Model.EnsureQuantized()
	}
	for _, it := range b.Items() {
		seq, ok := tokens[it.ID]
		if !ok {
			return nil, fmt.Errorf("engine: no tokens for item %d", it.ID)
		}
		if len(seq) != it.Len {
			return nil, fmt.Errorf("engine: item %d has %d tokens, layout says %d",
				it.ID, len(seq), it.Len)
		}
	}
	p := &Prepared{Batch: b, Tokens: tokens, mode: model.AttDense, eng: e}
	if b.Scheme == batch.SlottedConcat {
		p.mode = model.AttSlotted
	}
	for _, row := range b.Rows {
		if len(row.Items) == 0 {
			continue
		}
		rowTokens, layout, slots := e.rowLayout(b, row, tokens, p.mode)
		p.rows = append(p.rows, row)
		p.rowTokens = append(p.rowTokens, rowTokens)
		p.layouts = append(p.layouts, layout)
		p.slots = append(p.slots, slots)
		p.caps = append(p.caps, e.rowCaps(row))
	}
	if e.Mem != nil && b.TotalTokens() > 0 {
		// Tag by a fresh launch id, not the batch pointer: concurrent runs
		// on the same *batch.Batch would collide on Alloc/Free under a
		// pointer-derived tag.
		tag := fmt.Sprintf("launch-%d", launchSeq.Add(1))
		if err := e.Mem.Alloc(tag, int64(b.TotalTokens())*e.BytesPerToken); err != nil {
			return nil, err
		}
		p.memTag = tag
	}
	return p, nil
}

// Release frees the batch's device-memory reservation. Idempotent and safe
// on a nil receiver, so failure paths can release unconditionally before
// requeueing the batch's requests.
func (p *Prepared) Release() {
	if p == nil || p.released.Swap(true) {
		return
	}
	if p.memTag != "" {
		_ = p.eng.Mem.Free(p.memTag)
	}
}

// RunPrepared executes a staged batch. It does not release the memory
// reservation (Release does) and, with DeferCleaning set, leaves the
// cleaning simulations to FinishReport.
func (e *Engine) RunPrepared(p *Prepared) (*Report, error) {
	start := time.Now()
	var results []Result
	var runErr error
	if e.MaxNew > 0 && e.UseCache && e.FuseDecode {
		results, runErr = e.runFused(p)
	} else {
		results, runErr = e.runPerRow(p)
	}
	if runErr != nil {
		return nil, runErr
	}
	rep := &Report{Elapsed: time.Since(start), Results: results}
	if !p.DeferCleaning {
		if err := p.FinishReport(rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// FinishReport fills rep's memory-cleaning simulations (whole-batch
// baseline, and the early policy for slotted batches). RunPrepared calls it
// inline unless DeferCleaning moved it to the pipeline's cleanup stage.
func (p *Prepared) FinishReport(rep *Report) error {
	e := p.eng
	if e.MaxNew <= 0 || len(rep.Results) == 0 {
		return nil
	}
	finish := make(map[int64]int)
	for _, r := range rep.Results {
		finish[r.ID] = r.Steps
	}
	whole, err := gpu.SimulateWholeBatchCleaning(p.Batch, finish, e.BytesPerToken)
	if err != nil {
		return err
	}
	rep.WholeBatch = whole
	if p.Batch.Scheme == batch.SlottedConcat {
		early, err := gpu.SimulateEarlyCleaning(p.Batch, finish, e.BytesPerToken)
		if err != nil {
			return err
		}
		rep.Early = early
		rep.HasEarly = true
	}
	return nil
}

// launchSeq numbers engine launches process-wide for memory-manager tags.
var launchSeq atomic.Uint64

// rowLayout concatenates a row's item tokens, pads to the row capacity and
// builds the layout plus (for slotted batches) the slot descriptors.
func (e *Engine) rowLayout(b *batch.Batch, row batch.Row, tokens map[int64][]int, mode model.AttentionMode) (rowTokens []int, layout model.RowLayout, slots []model.Slot) {
	lengths := make([]int, len(row.Items))
	rowTokens = make([]int, 0, row.PadTo)
	for i, it := range row.Items {
		lengths[i] = it.Len
		rowTokens = append(rowTokens, tokens[it.ID]...)
	}
	for len(rowTokens) < row.PadTo {
		rowTokens = append(rowTokens, vocab.PadID)
	}
	layout = model.ConcatLayout(lengths, row.PadTo)
	if mode == model.AttSlotted {
		slots = e.slotsForRow(b, row, layout)
	}
	return rowTokens, layout, slots
}

// rowCaps returns the per-item generation caps of a row (MaxNew clamped by
// OutputCap).
func (e *Engine) rowCaps(row batch.Row) []int {
	caps := make([]int, len(row.Items))
	for i, it := range row.Items {
		caps[i] = e.MaxNew
		if e.OutputCap != nil {
			if c := e.OutputCap(it.Len); c < caps[i] {
				caps[i] = c
			}
		}
		if caps[i] < 0 {
			caps[i] = 0
		}
	}
	return caps
}

// runPerRow executes every staged row end to end in its own goroutine — the
// batch dimension of a real GPU launch, and the escape-hatch decode path
// when fused decoding is disabled.
func (e *Engine) runPerRow(p *Prepared) ([]Result, error) {
	type rowOut struct {
		results []Result
		err     error
	}
	outs := make([]rowOut, len(p.rows))
	var wg sync.WaitGroup
	for ri := range p.rows {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			res, err := e.runRow(p, ri)
			outs[ri] = rowOut{res, err}
		}(ri)
	}
	wg.Wait()
	var results []Result
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		results = append(results, o.results...)
	}
	return results, nil
}

// runFused executes the batch with a batch-wide fused decode: rows encode in
// parallel as before, then every row's segments decode together through one
// BatchDecodeState — one GEMM per layer per step across all rows instead of
// one small-GEMM stream per row.
func (e *Engine) runFused(p *Prepared) ([]Result, error) {
	if len(p.rows) == 0 {
		return nil, nil
	}
	// encodeRows (refill.go) uses a fresh workspace per row goroutine:
	// prepare-stage staging never aliases compute-stage buffers, so a
	// pipelined prepare for batch t+1 cannot stomp batch t's encode.
	decRows := e.encodeRows(p)

	gen, err := e.Model.GenerateBatchCached(decRows, p.caps)
	if err != nil {
		return nil, err
	}
	var results []Result
	for ri, row := range p.rows {
		for i, it := range row.Items {
			results = append(results, Result{ID: it.ID, Output: gen[ri][i].Tokens, Steps: gen[ri][i].Steps})
		}
	}
	return results, nil
}

// runRow executes one staged row: encode, decode, split results per item.
func (e *Engine) runRow(p *Prepared, ri int) ([]Result, error) {
	row := p.rows[ri]
	// One workspace per row goroutine: layer intermediates are checked out
	// and released inside the encoder/decoder, and the buffers themselves
	// are recycled across batches through the package pool.
	ws := tensor.NewWorkspace()
	defer ws.Close()
	encOut := e.Model.EncodeRowWS(p.rowTokens[ri], p.layouts[ri], p.slots[ri], p.mode, true, ws)
	if e.MaxNew == 0 {
		out := make([]Result, len(row.Items))
		for i, it := range row.Items {
			out[i] = Result{ID: it.ID}
		}
		return out, nil
	}
	var gen []model.GenerateResult
	if e.UseCache {
		var err error
		gen, err = e.Model.GenerateRowCached(encOut, p.layouts[ri], p.caps[ri])
		if err != nil {
			return nil, err
		}
	} else {
		gen = e.Model.GenerateRowCapped(encOut, p.layouts[ri], p.slots[ri], p.caps[ri], p.mode)
	}
	out := make([]Result, len(row.Items))
	for i, it := range row.Items {
		out[i] = Result{ID: it.ID, Output: gen[i].Tokens, Steps: gen[i].Steps}
	}
	return out, nil
}

// slotsForRow converts the batch's physical slot grouping into the model's
// Slot descriptors over the row layout.
func (e *Engine) slotsForRow(b *batch.Batch, row batch.Row, layout model.RowLayout) []model.Slot {
	groups := b.SlotGroups(row)
	var slots []model.Slot
	seg := 0
	for _, g := range groups {
		var s model.Slot
		first := true
		for range g {
			sg := layout.Segments[seg]
			if first {
				s.Start = sg.Start
				first = false
			}
			s.SegIdx = append(s.SegIdx, seg)
			s.Len = sg.End() - s.Start
			seg++
		}
		if !first {
			slots = append(slots, s)
		}
	}
	return slots
}

// RunSingle serves one request alone (no batching): the correctness
// reference for the equivalence tests and examples.
func (e *Engine) RunSingle(id int64, tokens []int) (Result, error) {
	items := []batch.Item{{ID: id, Len: len(tokens)}}
	b, rest := batch.PackConcat(items, 1, len(tokens))
	if len(rest) != 0 {
		return Result{}, fmt.Errorf("engine: single request did not pack")
	}
	rep, err := e.Run(b, map[int64][]int{id: tokens})
	if err != nil {
		return Result{}, err
	}
	return rep.Results[0], nil
}
