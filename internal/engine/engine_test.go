package engine

import (
	"testing"
	"testing/quick"

	"tcb/internal/batch"
	"tcb/internal/gpu"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/vocab"
)

const testVocab = 60

func testEngine(t testing.TB, maxNew int) *Engine {
	t.Helper()
	cfg := model.Config{
		VocabSize: testVocab, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 2, DecLayers: 2, MaxLen: 256, Eps: 1e-5,
	}
	return New(model.New(cfg, 77), maxNew)
}

func randTokens(src *rng.Source, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = src.IntRange(vocab.FirstWordID, testVocab-1)
	}
	return out
}

func makeRequests(src *rng.Source, lens ...int) (map[int64][]int, []batch.Item) {
	tokens := make(map[int64][]int)
	items := make([]batch.Item, len(lens))
	for i, l := range lens {
		id := int64(i + 1)
		tokens[id] = randTokens(src, l)
		items[i] = batch.Item{ID: id, Len: l}
	}
	return tokens, items
}

func TestRunConcatMatchesSingles(t *testing.T) {
	e := testEngine(t, 5)
	src := rng.New(1)
	tokens, items := makeRequests(src, 4, 7, 3, 5)
	b, rest := batch.PackConcat(items, 2, 12)
	if len(rest) != 0 {
		t.Fatalf("rest = %v", rest)
	}
	rep, err := e.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(rep.Results))
	}
	for _, r := range rep.Results {
		solo, err := e.RunSingle(r.ID, tokens[r.ID])
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Output) != len(solo.Output) {
			t.Fatalf("request %d: batch %v vs solo %v", r.ID, r.Output, solo.Output)
		}
		for i := range r.Output {
			if r.Output[i] != solo.Output[i] {
				t.Fatalf("request %d token %d differs", r.ID, i)
			}
		}
	}
	if rep.Elapsed <= 0 {
		t.Fatal("elapsed must be measured")
	}
}

func TestRunSlottedMatchesSingles(t *testing.T) {
	e := testEngine(t, 4)
	src := rng.New(2)
	tokens, items := makeRequests(src, 4, 3, 5, 2)
	b, rest := batch.PackSlotted(items, 2, 10, 5)
	if len(rest) != 0 {
		t.Fatalf("rest = %v", rest)
	}
	rep, err := e.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		solo, err := e.RunSingle(r.ID, tokens[r.ID])
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Output) != len(solo.Output) {
			t.Fatalf("request %d: slotted %v vs solo %v", r.ID, r.Output, solo.Output)
		}
		for i := range r.Output {
			if r.Output[i] != solo.Output[i] {
				t.Fatalf("request %d token %d differs", r.ID, i)
			}
		}
	}
}

func TestRunNaiveMatchesSingles(t *testing.T) {
	e := testEngine(t, 3)
	src := rng.New(3)
	tokens, items := makeRequests(src, 6, 2, 4)
	b, rest := batch.PackNaive(items, 4, 100)
	if len(rest) != 0 {
		t.Fatalf("rest = %v", rest)
	}
	rep, err := e.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		solo, err := e.RunSingle(r.ID, tokens[r.ID])
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Output) != len(solo.Output) {
			t.Fatalf("request %d differs from solo", r.ID)
		}
	}
}

func TestRunValidatesTokens(t *testing.T) {
	e := testEngine(t, 2)
	src := rng.New(4)
	tokens, items := makeRequests(src, 4)
	b, _ := batch.PackConcat(items, 1, 10)

	if _, err := e.Run(b, map[int64][]int{}); err == nil {
		t.Fatal("missing tokens should fail")
	}
	tokens[1] = tokens[1][:2] // wrong length
	if _, err := e.Run(b, tokens); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestRunRejectsInvalidBatch(t *testing.T) {
	e := testEngine(t, 2)
	bad := &batch.Batch{Scheme: batch.Concat, Rows: []batch.Row{
		{Items: []batch.Item{{ID: 1, Len: 20}}, PadTo: 10},
	}}
	if _, err := e.Run(bad, map[int64][]int{1: make([]int, 20)}); err == nil {
		t.Fatal("invalid batch should fail")
	}
}

func TestEncodeOnlyMode(t *testing.T) {
	e := testEngine(t, 0) // MaxNew 0: encode only
	src := rng.New(5)
	tokens, items := makeRequests(src, 3, 4)
	b, _ := batch.PackConcat(items, 1, 10)
	rep, err := e.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if len(r.Output) != 0 || r.Steps != 0 {
			t.Fatal("encode-only mode must not generate")
		}
	}
	if rep.HasEarly {
		t.Fatal("no memory reports without decoding")
	}
}

func TestMemoryReports(t *testing.T) {
	e := testEngine(t, 6)
	src := rng.New(6)
	tokens, items := makeRequests(src, 4, 3, 5, 2)
	slotted, rest := batch.PackSlotted(items, 2, 10, 5)
	if len(rest) != 0 {
		t.Fatal("pack failed")
	}
	rep, err := e.Run(slotted, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasEarly {
		t.Fatal("slotted batches must produce early-cleaning reports")
	}
	if rep.Early.ByteSteps > rep.Early.TotalBytes*int64(rep.Early.FinalStep) {
		t.Fatal("early cleaning must not exceed whole-residency byte-steps")
	}

	pure, _ := batch.PackConcat(items, 2, 10)
	rep2, err := e.Run(pure, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.HasEarly {
		t.Fatal("pure concat cannot clean early (§4.2.2)")
	}
	if rep2.WholeBatch.TotalBytes == 0 {
		t.Fatal("whole-batch report must be populated")
	}
}

func TestEmptyRowsSkipped(t *testing.T) {
	e := testEngine(t, 2)
	b := &batch.Batch{Scheme: batch.Concat, Rows: []batch.Row{{PadTo: 10}}}
	rep, err := e.Run(b, map[int64][]int{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatal("empty rows should yield no results")
	}
}

func TestDifferentLengthsFinishAtDifferentSteps(t *testing.T) {
	// §4.2.2's premise: the decoder is auto-regressive, so requests in one
	// batch finish at different steps. With random weights most sequences
	// run to MaxNew, so force different step ceilings via input lengths
	// is not reliable — instead just verify Steps is recorded and bounded.
	e := testEngine(t, 4)
	src := rng.New(8)
	tokens, items := makeRequests(src, 3, 8)
	b, _ := batch.PackConcat(items, 1, 12)
	rep, err := e.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Steps <= 0 || r.Steps > 4 {
			t.Fatalf("steps = %d out of (0, 4]", r.Steps)
		}
	}
}

func BenchmarkRunConcatRow(b *testing.B) {
	e := testEngine(b, 2)
	src := rng.New(9)
	tokens, items := makeRequests(src, 10, 10, 10, 10)
	bt, _ := batch.PackConcat(items, 1, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(bt, tokens); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOutputCapStaggersFinishSteps(t *testing.T) {
	e := testEngine(t, 10)
	e.OutputCap = func(inputLen int) int { return inputLen }
	src := rng.New(20)
	tokens, items := makeRequests(src, 2, 7)
	b, _ := batch.PackConcat(items, 1, 12)
	rep, err := e.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	steps := map[int64]int{}
	for _, r := range rep.Results {
		steps[r.ID] = r.Steps
		if len(r.Output) > tokens[r.ID][0]*0+10 {
			t.Fatal("output exceeded MaxNew")
		}
	}
	if steps[1] >= steps[2] {
		t.Fatalf("shorter input should finish earlier: %v", steps)
	}
}

func TestOutputCapNegativeClampsToZero(t *testing.T) {
	e := testEngine(t, 5)
	e.OutputCap = func(int) int { return -3 }
	src := rng.New(21)
	tokens, items := makeRequests(src, 4)
	b, _ := batch.PackConcat(items, 1, 10)
	rep, err := e.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results[0].Output) != 0 {
		t.Fatal("negative cap must clamp to zero generation")
	}
}

func TestOutputCapEarlyCleaningBenefit(t *testing.T) {
	// With length-proportional outputs, slotted early cleaning must beat
	// whole-batch residency (§4.2.2) — the real-engine invariant.
	e := testEngine(t, 12)
	e.OutputCap = func(inputLen int) int { return inputLen }
	src := rng.New(22)
	tokens, items := makeRequests(src, 2, 5, 3, 4)
	b, rest := batch.PackSlotted(items, 2, 10, 5)
	if len(rest) != 0 {
		t.Fatal("pack failed")
	}
	rep, err := e.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasEarly {
		t.Fatal("expected early report")
	}
	wholeAtSlottedFootprint := rep.Early.TotalBytes * int64(rep.Early.FinalStep)
	if rep.Early.ByteSteps >= wholeAtSlottedFootprint {
		t.Fatalf("early cleaning saved nothing: %d >= %d",
			rep.Early.ByteSteps, wholeAtSlottedFootprint)
	}
}

func TestUseCacheMatchesRerun(t *testing.T) {
	src := rng.New(30)
	tokens, items := makeRequests(src, 4, 7, 3)
	b, rest := batch.PackConcat(items, 1, 14)
	if len(rest) != 0 {
		t.Fatal("pack failed")
	}
	rerun := testEngine(t, 5)
	cached := testEngine(t, 5)
	cached.UseCache = true
	r1, err := rerun.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cached.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int64][]int{}
	for _, r := range r1.Results {
		byID[r.ID] = r.Output
	}
	for _, r := range r2.Results {
		want := byID[r.ID]
		if len(r.Output) != len(want) {
			t.Fatalf("request %d: cached %v vs rerun %v", r.ID, r.Output, want)
		}
		for i := range want {
			if r.Output[i] != want[i] {
				t.Fatalf("request %d token %d differs", r.ID, i)
			}
		}
	}
}

func TestUseCacheSlottedScheme(t *testing.T) {
	src := rng.New(31)
	tokens, items := makeRequests(src, 4, 3, 5)
	b, rest := batch.PackSlotted(items, 2, 10, 5)
	if len(rest) != 0 {
		t.Fatal("pack failed")
	}
	e := testEngine(t, 4)
	e.UseCache = true
	rep, err := e.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		solo, err := e.RunSingle(r.ID+50, tokens[r.ID])
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Output) != len(solo.Output) {
			t.Fatalf("request %d cached-slotted differs from solo", r.ID)
		}
	}
}

// Property: for random request sets, every batching scheme produces the
// same outputs as standalone inference.
func TestAllSchemesEquivalentProperty(t *testing.T) {
	e := testEngine(t, 3)
	f := func(seed uint16) bool {
		src := rng.New(uint64(seed) + 1)
		n := src.IntRange(1, 4)
		lens := make([]int, n)
		for i := range lens {
			lens[i] = src.IntRange(2, 6)
		}
		tokens, items := makeRequests(src, lens...)
		solo := map[int64][]int{}
		for _, it := range items {
			r, err := e.RunSingle(it.ID+1000, tokens[it.ID])
			if err != nil {
				return false
			}
			solo[it.ID] = r.Output
		}
		check := func(b *batch.Batch) bool {
			rep, err := e.Run(b, tokens)
			if err != nil {
				return false
			}
			for _, r := range rep.Results {
				want := solo[r.ID]
				if len(r.Output) != len(want) {
					return false
				}
				for i := range want {
					if r.Output[i] != want[i] {
						return false
					}
				}
			}
			return true
		}
		nb, rest := batch.PackNaive(items, 8, 64)
		if len(rest) != 0 || !check(nb) {
			return false
		}
		cb, rest := batch.PackConcat(items, 2, 16)
		if len(rest) != 0 || !check(cb) {
			return false
		}
		sb, rest := batch.PackSlotted(items, 2, 16, 8)
		if len(rest) != 0 || !check(sb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBudgetEnforced(t *testing.T) {
	e := testEngine(t, 0)
	src := rng.New(40)
	tokens, items := makeRequests(src, 10, 10)
	b, _ := batch.PackConcat(items, 1, 20)
	// Budget exactly one batch: 20 tokens × BytesPerToken.
	e.Mem = gpu.NewMemoryManager(20 * e.BytesPerToken)
	if _, err := e.Run(b, tokens); err != nil {
		t.Fatalf("fitting batch rejected: %v", err)
	}
	// Memory must be released after the run.
	if e.Mem.Used() != 0 || e.Mem.Outstanding() != 0 {
		t.Fatalf("memory leaked: used=%d outstanding=%d", e.Mem.Used(), e.Mem.Outstanding())
	}
	// A larger batch must be rejected with the allocator's error.
	tokens2, items2 := makeRequests(src, 15, 15)
	big, _ := batch.PackConcat(items2, 1, 30)
	if _, err := e.Run(big, tokens2); err == nil {
		t.Fatal("over-budget batch should fail")
	}
}

// The fused batch-wide decode path must be token-identical to the per-row
// cached path and the mask-based no-cache path, across all three batching
// schemes. Steps must match too (finish accounting feeds the memory model).
func TestFusedDecodeMatchesPerRow(t *testing.T) {
	src := rng.New(50)
	tokens, items := makeRequests(src, 4, 7, 3, 5, 2, 6)
	nb, rest1 := batch.PackNaive(items, 8, 64)
	cb, rest2 := batch.PackConcat(items, 2, 16)
	sb, rest3 := batch.PackSlotted(items, 2, 16, 8)
	if len(rest1)+len(rest2)+len(rest3) != 0 {
		t.Fatal("packing left requests behind")
	}
	packs := []struct {
		name string
		b    *batch.Batch
	}{{"naive", nb}, {"concat", cb}, {"slotted", sb}}
	for _, tc := range packs {
		t.Run(tc.name, func(t *testing.T) {
			fused := testEngine(t, 5)
			fused.UseCache = true // FuseDecode already true from New
			perRow := testEngine(t, 5)
			perRow.UseCache = true
			perRow.FuseDecode = false
			masked := testEngine(t, 5) // UseCache false: mask-based decode

			rf, err := fused.Run(tc.b, tokens)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := perRow.Run(tc.b, tokens)
			if err != nil {
				t.Fatal(err)
			}
			rm, err := masked.Run(tc.b, tokens)
			if err != nil {
				t.Fatal(err)
			}
			type out struct {
				tokens []int
				steps  int
			}
			index := func(rep *Report) map[int64]out {
				m := make(map[int64]out)
				for _, r := range rep.Results {
					m[r.ID] = out{r.Output, r.Steps}
				}
				return m
			}
			pf, pp, pm := index(rf), index(rp), index(rm)
			if len(pf) != len(items) {
				t.Fatalf("fused returned %d results, want %d", len(pf), len(items))
			}
			for id, f := range pf {
				p, m := pp[id], pm[id]
				if !equalInts(f.tokens, p.tokens) || f.steps != p.steps {
					t.Fatalf("request %d: fused %v/%d vs per-row %v/%d", id, f.tokens, f.steps, p.tokens, p.steps)
				}
				if !equalInts(f.tokens, m.tokens) || f.steps != m.steps {
					t.Fatalf("request %d: fused %v/%d vs masked %v/%d", id, f.tokens, f.steps, m.tokens, m.steps)
				}
			}
		})
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Concurrent Run calls on the SAME *batch.Batch must not collide in the
// memory manager: the launch tag is a process-wide counter, not the batch
// pointer.
func TestConcurrentRunsShareBatch(t *testing.T) {
	e := testEngine(t, 0)
	src := rng.New(51)
	tokens, items := makeRequests(src, 5, 5)
	b, _ := batch.PackConcat(items, 1, 10)
	// Budget two simultaneous launches of this batch.
	e.Mem = gpu.NewMemoryManager(2 * 10 * e.BytesPerToken)
	const launches = 2
	errs := make(chan error, launches)
	start := make(chan struct{})
	for i := 0; i < launches; i++ {
		go func() {
			<-start
			_, err := e.Run(b, tokens)
			errs <- err
		}()
	}
	close(start)
	for i := 0; i < launches; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent launch failed: %v", err)
		}
	}
	if e.Mem.Used() != 0 || e.Mem.Outstanding() != 0 {
		t.Fatalf("memory leaked: used=%d outstanding=%d", e.Mem.Used(), e.Mem.Outstanding())
	}
}

// TestPreparedMatchesRun pins the split handoff to the one-shot path:
// Prepare + RunPrepared + Release must produce the same outputs and the
// same memory accounting as Run.
func TestPreparedMatchesRun(t *testing.T) {
	e := testEngine(t, 4)
	src := rng.New(61)
	tokens, items := makeRequests(src, 4, 6, 3)
	b, _ := batch.PackConcat(items, 2, 10)
	e.Mem = gpu.NewMemoryManager(int64(b.TotalTokens()) * e.BytesPerToken)

	want, err := e.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mem.Used() == 0 {
		t.Fatal("Prepare must hold the batch's reservation")
	}
	got, err := e.RunPrepared(p)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mem.Used() == 0 {
		t.Fatal("RunPrepared must not free the reservation")
	}
	p.Release()
	if e.Mem.Used() != 0 || e.Mem.Outstanding() != 0 {
		t.Fatalf("Release leaked: used=%d outstanding=%d", e.Mem.Used(), e.Mem.Outstanding())
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("results: %d vs %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if w.ID != g.ID || len(w.Output) != len(g.Output) {
			t.Fatalf("result %d: %+v vs %+v", i, w, g)
		}
		for j := range w.Output {
			if w.Output[j] != g.Output[j] {
				t.Fatalf("result %d token %d differs", i, j)
			}
		}
	}
	if got.WholeBatch != want.WholeBatch {
		t.Fatalf("cleaning report differs: %+v vs %+v", got.WholeBatch, want.WholeBatch)
	}
}

// TestPreparedReleaseIdempotent: double Release (and Release on nil) must
// be safe — the serve pipeline releases on both the success and the
// failure path, and a watchdog race can reach both.
func TestPreparedReleaseIdempotent(t *testing.T) {
	e := testEngine(t, 2)
	src := rng.New(62)
	tokens, items := makeRequests(src, 5)
	b, _ := batch.PackConcat(items, 1, 8)
	e.Mem = gpu.NewMemoryManager(int64(b.TotalTokens()) * e.BytesPerToken)
	p, err := e.Prepare(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
	p.Release()
	var nilP *Prepared
	nilP.Release()
	if e.Mem.Used() != 0 || e.Mem.Outstanding() != 0 {
		t.Fatalf("double release broke accounting: used=%d outstanding=%d",
			e.Mem.Used(), e.Mem.Outstanding())
	}
}

// TestDeferredFinishReportMatchesInline: running with DeferCleaning and
// calling FinishReport afterwards must fill the same cleaning reports the
// inline path produces.
func TestDeferredFinishReportMatchesInline(t *testing.T) {
	e := testEngine(t, 5)
	src := rng.New(63)
	tokens, items := makeRequests(src, 4, 3, 6)
	b, _ := batch.PackSlotted(items, 2, 14, 7)

	want, err := e.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	p.DeferCleaning = true
	got, err := e.RunPrepared(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.WholeBatch != (gpu.CleaningReport{}) {
		t.Fatal("DeferCleaning must leave the report empty until FinishReport")
	}
	if err := p.FinishReport(got); err != nil {
		t.Fatal(err)
	}
	if got.WholeBatch != want.WholeBatch {
		t.Fatalf("deferred whole-batch report differs: %+v vs %+v", got.WholeBatch, want.WholeBatch)
	}
	if got.HasEarly != want.HasEarly || got.Early != want.Early {
		t.Fatalf("deferred early report differs: %+v vs %+v", got.Early, want.Early)
	}
}
