// Continuous batching: the engine-side refill loop. RunPreparedRefill
// decodes a prepared batch step by step like the fused path, but treats the
// launch as a persistent execution context: the moment a segment finishes it
// is delivered through the hook, its KV state removed from the fused decode
// state, and its share of the device reservation shrunk (§4.2.2's early
// memory cleaning, generalized from the post-hoc simulation into the live
// loop). Between steps the hook is consulted for queued requests that fit
// the freed token capacity; admitted requests are encoded, inserted into the
// running state, and decode alongside the survivors. With a hook that never
// admits anything, the loop performs exactly the removals the fused path's
// skip-finished gather performs implicitly, so outputs are bitwise identical
// to RunPrepared.
package engine

import (
	"fmt"
	"math"
	"sync"
	"time"

	"tcb/internal/model"
	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// Admission is one queued request offered to a running batch: the serving
// layer's refill hook returns these from Refill. Tokens always carries the
// FULL request; on a prefix-cache hit (CachedLen > 0) only the suffix is
// encoded and seated, so the admission occupies Resident() tokens of the
// freed capacity.
type Admission struct {
	ID     int64
	Tokens []int
	// PrefixLen declares the shared-prefix boundary (0 = none); CachedLen
	// is 0 (cold — encode prefix and suffix as two isolated segments, then
	// freeze the prefix) or PrefixLen (hit — encode the suffix only and
	// inherit the frozen prefix K/V).
	PrefixLen int
	CachedLen int
}

// Resident returns the token capacity the admission occupies in the batch:
// the full length cold, the uncached suffix on a prefix-cache hit.
func (a Admission) Resident() int { return len(a.Tokens) - a.CachedLen }

// RefillHook connects a running launch back to whoever owns the request
// queue. The engine calls it from the decode loop's goroutine:
//
//   - Retire delivers a finished request the moment its segment is removed
//     and its memory reclaimed — not when the batch ends.
//   - Refill is offered the current free token capacity after each step that
//     retired at least one segment (and is only called with free > 0); it
//     returns the requests to admit, whose token lengths must each fit the
//     offered capacity.
//   - Reject returns an admission the engine could not seat (memory grow
//     failure, over-long input) to the caller for requeueing.
type RefillHook interface {
	Retire(res Result)
	Refill(freeTokens int) []Admission
	Reject(adm Admission, err error)
}

// RefillReport summarizes one refill-enabled launch for observability.
type RefillReport struct {
	// Admitted counts requests admitted into the launch mid-flight.
	Admitted int
	// RetiredEarly counts segments delivered and memory-cleaned while other
	// segments were still decoding (the batch-end retires are not "early").
	RetiredEarly int
	// Steps is the total number of decode steps the launch ran.
	Steps int
	// SlotIdleSteps accumulates, per step, the number of retired-but-unfilled
	// slots — capacity the no-refill path would have wasted anyway, and the
	// refill path wastes only when the queue offers nothing that fits.
	SlotIdleSteps int64
	// LiveTokenSteps and CapacityTokenSteps accumulate, per decode step, the
	// live input tokens and the batch's token capacity; their ratio is the
	// launch's occupancy.
	LiveTokenSteps     int64
	CapacityTokenSteps int64
}

// OccupancyPct returns the launch's mean batch occupancy in percent: live
// tokens over capacity tokens, across all decode steps.
func (r *RefillReport) OccupancyPct() float64 {
	if r == nil || r.CapacityTokenSteps == 0 {
		return 0
	}
	return 100 * float64(r.LiveTokenSteps) / float64(r.CapacityTokenSteps)
}

// shrinkReservation releases bytes from the batch's device reservation as a
// segment retires. Errors are deliberately dropped: a watchdog-abandoned run
// may race the server's Release, and losing a shrink on an already-freed tag
// is harmless.
func (p *Prepared) shrinkReservation(bytes int64) {
	if p.memTag == "" || bytes <= 0 || p.released.Load() {
		return
	}
	_ = p.eng.Mem.Resize(p.memTag, -bytes)
}

// growReservation claims bytes for an admitted request; failure means the
// admission does not fit the device budget and must be rejected.
func (p *Prepared) growReservation(bytes int64) error {
	if p.memTag == "" || bytes <= 0 {
		return nil
	}
	if p.released.Load() {
		return fmt.Errorf("engine: batch reservation already released")
	}
	return p.eng.Mem.Resize(p.memTag, bytes)
}

// RunPreparedRefill executes a staged batch with mid-flight slot refill. A
// nil hook degrades to RunPrepared; the refill loop itself requires the
// fused cached decoder (the default engine configuration).
func (e *Engine) RunPreparedRefill(p *Prepared, hook RefillHook) (*Report, error) {
	if hook == nil {
		return e.RunPrepared(p)
	}
	if e.MaxNew <= 0 || !e.UseCache || !e.FuseDecode {
		return nil, fmt.Errorf("engine: refill requires MaxNew > 0, UseCache and FuseDecode")
	}
	start := time.Now()
	results, ref, err := e.runFusedRefill(p, hook)
	if err != nil {
		return nil, err
	}
	rep := &Report{Elapsed: time.Since(start), Results: results, Refill: ref}
	if !p.DeferCleaning {
		if err := p.FinishReport(rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// liveSeg is the engine-side bookkeeping for one flat segment of a
// refill-enabled launch; the slice of these stays index-aligned with the
// BatchDecodeState's flat segment order across removals and insertions.
type liveSeg struct {
	id     int64
	cap    int // generation cap (MaxNew clamped by OutputCap)
	inLen  int // input tokens: the capacity it occupies and frees
	steps  int // decode steps this segment has taken
	next   int // token to feed on the next Step
	output []int
}

// runFusedRefill is runFused with the greedy decode loop opened up for
// per-step retirement and admission.
func (e *Engine) runFusedRefill(p *Prepared, hook RefillHook) ([]Result, *RefillReport, error) {
	ref := &RefillReport{}
	if len(p.rows) == 0 {
		return nil, ref, nil
	}
	decRows := e.encodeRows(p)
	// Freeze declared prefixes as soon as the encode lands — refill launches
	// run long, so making the prefix available early lets admissions from the
	// same family hit the cache mid-flight.
	for ri := range p.rows {
		e.freezeRowPrefixes(p, ri, decRows[ri].EncOut)
	}
	st := e.Model.NewBatchDecodeStateReserve(decRows, e.MaxNew)
	defer st.Close()

	segs := make([]*liveSeg, 0, st.Segments())
	var liveTokens int64
	for ri, row := range p.rows {
		for i, it := range row.Items {
			segs = append(segs, &liveSeg{
				id: it.ID, cap: p.caps[ri][i], inLen: it.Len, next: vocab.BosID,
			})
			liveTokens += int64(it.Len)
		}
	}
	capacityTokens := int64(p.Batch.TotalTokens())

	var results []Result
	freeTokens, freeSlots := 0, 0
	next := make([]int, 0, len(segs))
	var finishedIdx []int
	step := 0

	// retire removes segment i from the state and the bookkeeping, shrinks
	// its share of the reservation, and delivers its result through the hook.
	retire := func(i int) {
		sg := segs[i]
		st.RemoveSegment(i)
		copy(segs[i:], segs[i+1:])
		segs[len(segs)-1] = nil
		segs = segs[:len(segs)-1]
		liveTokens -= int64(sg.inLen)
		freeTokens += sg.inLen
		freeSlots++
		p.shrinkReservation(int64(sg.inLen) * e.BytesPerToken)
		res := Result{ID: sg.id, Output: sg.output, Steps: sg.steps}
		results = append(results, res)
		hook.Retire(res)
		if len(segs) > 0 {
			ref.RetiredEarly++
		}
	}

	for len(segs) > 0 {
		// Zero-cap segments (OutputCap can floor at 0) retire without a step,
		// matching the fused path's up-front MarkFinished.
		for i := len(segs) - 1; i >= 0; i-- {
			if segs[i].cap <= 0 {
				retire(i)
			}
		}
		if len(segs) > 0 {
			next = next[:0]
			for _, sg := range segs {
				next = append(next, sg.next)
			}
			logits, err := st.Step(next)
			if err != nil {
				return nil, nil, err
			}
			step++
			ref.Steps = step
			ref.LiveTokenSteps += liveTokens
			ref.CapacityTokenSteps += capacityTokens
			finishedIdx = finishedIdx[:0]
			for i, sg := range segs {
				row := logits[i]
				if row == nil {
					continue
				}
				sg.steps++
				best, bestj := float32(math.Inf(-1)), 0
				for j, v := range row {
					if v > best {
						best, bestj = v, j
					}
				}
				if bestj == vocab.EosID {
					finishedIdx = append(finishedIdx, i)
					continue
				}
				sg.output = append(sg.output, bestj)
				sg.next = bestj
				if len(sg.output) >= sg.cap {
					finishedIdx = append(finishedIdx, i)
				}
			}
			// Retire highest index first so pending indices stay valid.
			for k := len(finishedIdx) - 1; k >= 0; k-- {
				retire(finishedIdx[k])
			}
		}
		// Offer the freed capacity to the queue. Admission is allowed even
		// when every segment just finished: the launch stays alive as long
		// as the queue keeps feeding it.
		if freeTokens > 0 {
			seated := make([]Admission, 0, 4)
			for _, adm := range hook.Refill(freeTokens) {
				if adm.Resident() <= 0 || adm.Resident() > freeTokens {
					hook.Reject(adm, fmt.Errorf("engine: admission of %d tokens for %d free", adm.Resident(), freeTokens))
					continue
				}
				if adm.CachedLen > 0 && e.PrefixCache == nil {
					hook.Reject(adm, fmt.Errorf("engine: admission %d expects a cached prefix but the engine has no prefix cache", adm.ID))
					continue
				}
				if err := p.growReservation(int64(adm.Resident()) * e.BytesPerToken); err != nil {
					hook.Reject(adm, err)
					continue
				}
				freeTokens -= adm.Resident()
				seated = append(seated, adm)
			}
			// Encode the whole offer in parallel — the admission-side mirror
			// of the launch's row-encode fan-out — then insert in admission
			// order so the state layout stays deterministic.
			encOuts := e.encodeAdmissions(seated)
			for ai, adm := range seated {
				encOut, err := encOuts[ai], error(nil)
				if encOut == nil {
					err = fmt.Errorf("engine: admission of %d tokens beyond MaxLen %d", len(adm.Tokens), e.Model.P.PosEnc.Rows)
				} else if adm.CachedLen > 0 {
					var kv *model.PrefixKV
					var ok bool
					if _, kv, ok = e.PrefixCache.Peek(adm.Tokens, adm.CachedLen); !ok {
						err = fmt.Errorf("engine: admission %d's cached prefix is not resident (pin not held?)", adm.ID)
					} else {
						_, err = st.InsertSegmentPrefix(encOut, kv)
					}
				} else {
					_, err = st.InsertSegment(encOut)
				}
				if err != nil {
					freeTokens += adm.Resident()
					p.shrinkReservation(int64(adm.Resident()) * e.BytesPerToken)
					hook.Reject(adm, err)
					continue
				}
				if adm.PrefixLen > 0 && adm.CachedLen == 0 {
					e.freezeAdmissionPrefix(adm, encOuts[ai])
				}
				cap := e.MaxNew
				if e.OutputCap != nil {
					if c := e.OutputCap(len(adm.Tokens)); c < cap {
						cap = c
					}
				}
				if cap < 0 {
					cap = 0
				}
				segs = append(segs, &liveSeg{
					id: adm.ID, cap: cap, inLen: adm.Resident(), next: vocab.BosID,
				})
				liveTokens += int64(adm.Resident())
				if freeSlots > 0 {
					freeSlots--
				}
				ref.Admitted++
			}
		}
		if len(segs) > 0 {
			ref.SlotIdleSteps += int64(freeSlots)
		}
	}
	return results, ref, nil
}

// encodeRows encodes every staged row in parallel — identical to the fused
// path's encode fan-out. Encoding uses the encoder-side layout (which splits
// declared prefixes into their own attention segments); the decode-side
// layout and any inherited prefixes ride along on the BatchDecodeRow.
func (e *Engine) encodeRows(p *Prepared) []model.BatchDecodeRow {
	decRows := make([]model.BatchDecodeRow, len(p.rows))
	var wg sync.WaitGroup
	for ri := range p.rows {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			ws := tensor.NewWorkspace()
			defer ws.Close()
			decRows[ri] = model.BatchDecodeRow{
				EncOut:   e.Model.EncodeRowWS(p.rowTokens[ri], p.encLayouts[ri], p.slots[ri], p.mode, true, ws),
				Layout:   p.layouts[ri],
				Prefixes: p.prefixes[ri],
			}
		}(ri)
	}
	wg.Wait()
	return decRows
}

// encodeAdmissions encodes each admitted request as its own pad-free row,
// fanning the encoder forwards out in parallel like the launch-time row
// encode. Concatenation isolation makes each result identical to what the
// request would see inside any batch row, so admitted outputs match the
// no-refill run of the same request. A prefix-cache hit encodes the uncached
// suffix only; a cold declared prefix encodes prefix and suffix as two
// isolated segments (so the prefix rows can be frozen for reuse). Over-long
// requests yield a nil entry for the caller to reject.
func (e *Engine) encodeAdmissions(adms []Admission) []*tensor.Matrix {
	outs := make([]*tensor.Matrix, len(adms))
	var wg sync.WaitGroup
	for i, adm := range adms {
		if len(adm.Tokens) > e.Model.P.PosEnc.Rows {
			continue
		}
		wg.Add(1)
		go func(i int, adm Admission) {
			defer wg.Done()
			ws := tensor.NewWorkspace()
			defer ws.Close()
			var layout model.RowLayout
			tokens := adm.Tokens
			switch {
			case adm.CachedLen > 0:
				tokens = adm.Tokens[adm.CachedLen:]
				layout = model.SingleSegment(len(tokens), len(tokens))
			case adm.PrefixLen > 0:
				layout = model.ConcatLayout([]int{adm.PrefixLen, len(tokens) - adm.PrefixLen}, len(tokens))
			default:
				layout = model.SingleSegment(len(tokens), len(tokens))
			}
			outs[i] = e.Model.EncodeRowWS(tokens, layout, nil, model.AttDense, true, ws)
		}(i, adm)
	}
	wg.Wait()
	return outs
}

// freezeAdmissionPrefix inserts a cold-declared admission's just-encoded
// prefix rows into the prefix cache. Best-effort: a full cache only costs
// future hits.
func (e *Engine) freezeAdmissionPrefix(adm Admission, encOut *tensor.Matrix) {
	if e.PrefixCache == nil || encOut == nil || adm.PrefixLen <= 0 {
		return
	}
	if e.PrefixCache.Contains(adm.Tokens, adm.PrefixLen) {
		return
	}
	rows := encOut.Slice(0, adm.PrefixLen)
	kv, err := e.Model.BuildPrefixKV(rows)
	if err != nil {
		return
	}
	e.PrefixCache.Insert(adm.Tokens, adm.PrefixLen, rows, kv)
}
