package engine

import (
	"fmt"
	"time"

	"tcb/internal/batch"
	"tcb/internal/cost"
	"tcb/internal/rng"
	"tcb/internal/vocab"
)

// MeasureCost times encode-only batches on the real engine across a grid
// that varies token count (via batch rows) and attention-score area (via
// slot partitioning at fixed content), producing the independent-regressor
// measurements cost.CalibrateFull needs. reqLen must divide rowLen.
//
// This closes the loop DESIGN.md promises: the simulator's cost constants
// can be fitted to this Go engine instead of the synthetic V100 defaults.
func MeasureCost(e *Engine, rowLen, reqLen int, rowCounts []int, reps int, seed uint64) ([]cost.Measurement, error) {
	if rowLen%reqLen != 0 || reqLen <= 0 {
		return nil, fmt.Errorf("engine: reqLen %d must divide rowLen %d", reqLen, rowLen)
	}
	if reps < 1 {
		reps = 1
	}
	if e.MaxNew != 0 {
		return nil, fmt.Errorf("engine: MeasureCost requires an encode-only engine (MaxNew == 0)")
	}
	src := rng.New(seed)
	var out []cost.Measurement
	for _, rows := range rowCounts {
		if rows <= 0 {
			return nil, fmt.Errorf("engine: non-positive row count %d", rows)
		}
		perRow := rowLen / reqLen
		n := rows * perRow
		items := make([]batch.Item, n)
		tokens := make(map[int64][]int, n)
		for i := 0; i < n; i++ {
			id := int64(i + 1)
			items[i] = batch.Item{ID: id, Len: reqLen}
			seq := make([]int, reqLen)
			for j := range seq {
				seq[j] = src.IntRange(vocab.FirstWordID, e.Model.Cfg.VocabSize-1)
			}
			tokens[id] = seq
		}
		// Same content at two slot partitions: whole-row (max area) and
		// per-request slots (min area) — the independent area variation.
		pure, rest := batch.PackConcat(items, rows, rowLen)
		if len(rest) != 0 {
			return nil, fmt.Errorf("engine: pure pack left %d items", len(rest))
		}
		slotted, rest := batch.PackSlotted(items, rows, rowLen, reqLen)
		if len(rest) != 0 {
			return nil, fmt.Errorf("engine: slotted pack left %d items", len(rest))
		}
		for _, b := range []*batch.Batch{pure, slotted} {
			best := 0.0
			for r := 0; r < reps; r++ {
				start := time.Now()
				if _, err := e.Run(b, tokens); err != nil {
					return nil, err
				}
				el := time.Since(start).Seconds()
				if r == 0 || el < best {
					best = el
				}
			}
			out = append(out, cost.Measurement{
				Tokens:    b.SlottedTokens(),
				ScoreArea: b.ScoreArea(),
				Seconds:   best,
			})
		}
	}
	return out, nil
}
