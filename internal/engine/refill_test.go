package engine

import (
	"testing"

	"tcb/internal/batch"
	"tcb/internal/gpu"
	"tcb/internal/rng"
)

// scriptHook is a deterministic RefillHook over a pre-scripted admission
// queue: Refill admits prefix-greedily whatever fits the offered capacity.
type scriptHook struct {
	queue    []Admission
	retired  []Result
	rejected []Admission
	offers   int
}

func (h *scriptHook) Retire(res Result) { h.retired = append(h.retired, res) }

func (h *scriptHook) Refill(free int) []Admission {
	h.offers++
	var out []Admission
	for len(h.queue) > 0 && len(h.queue[0].Tokens) <= free {
		out = append(out, h.queue[0])
		free -= len(h.queue[0].Tokens)
		h.queue = h.queue[1:]
	}
	return out
}

func (h *scriptHook) Reject(adm Admission, err error) { h.rejected = append(h.rejected, adm) }

func refillEngine(t testing.TB, maxNew int) *Engine {
	e := testEngine(t, maxNew)
	e.UseCache = true
	e.OutputCap = func(inputLen int) int { return inputLen }
	return e
}

// With a hook that never admits, RunPreparedRefill must reproduce
// RunPrepared's outputs exactly: retiring a finished segment from the state
// is bitwise equivalent to the fused path skipping it in place.
func TestRefillEmptyQueueMatchesRunPrepared(t *testing.T) {
	src := rng.New(70)
	tokens, items := makeRequests(src, 2, 7, 3, 5)
	b, rest := batch.PackConcat(items, 2, 12)
	if len(rest) != 0 {
		t.Fatal("pack failed")
	}

	plain := refillEngine(t, 8)
	p1, err := plain.Prepare(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.RunPrepared(p1)
	if err != nil {
		t.Fatal(err)
	}
	p1.Release()

	refill := refillEngine(t, 8)
	p2, err := refill.Prepare(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	hook := &scriptHook{}
	got, err := refill.RunPreparedRefill(p2, hook)
	if err != nil {
		t.Fatal(err)
	}
	p2.Release()

	byID := map[int64]Result{}
	for _, r := range want.Results {
		byID[r.ID] = r
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("results: %d vs %d", len(got.Results), len(want.Results))
	}
	for _, r := range got.Results {
		w := byID[r.ID]
		if !equalInts(r.Output, w.Output) || r.Steps != w.Steps {
			t.Fatalf("request %d: refill %v/%d vs plain %v/%d", r.ID, r.Output, r.Steps, w.Output, w.Steps)
		}
	}
	if got.Refill == nil {
		t.Fatal("refill report missing")
	}
	if got.Refill.Admitted != 0 {
		t.Fatalf("admitted %d with an empty queue", got.Refill.Admitted)
	}
	if len(hook.retired) != len(items) {
		t.Fatalf("retired %d of %d requests through the hook", len(hook.retired), len(items))
	}
}

// Admitted requests must decode to exactly what they produce standalone —
// concatenation isolation holds across mid-flight insertion — and retired
// incumbents must be delivered through the hook before the batch ends.
func TestRefillAdmissionsMatchSingles(t *testing.T) {
	src := rng.New(71)
	tokens, items := makeRequests(src, 2, 8, 2)
	b, rest := batch.PackConcat(items, 1, 12)
	if len(rest) != 0 {
		t.Fatal("pack failed")
	}

	e := refillEngine(t, 10)
	hook := &scriptHook{}
	for i := 0; i < 4; i++ {
		id := int64(100 + i)
		toks := randTokens(src, 2+i%2)
		tokens[id] = toks
		hook.queue = append(hook.queue, Admission{ID: id, Tokens: toks})
	}

	p, err := e.Prepare(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.RunPreparedRefill(p, hook)
	if err != nil {
		t.Fatal(err)
	}
	p.Release()

	if rep.Refill.Admitted != 4 {
		t.Fatalf("admitted %d of 4 scripted requests (queue left: %d)", rep.Refill.Admitted, len(hook.queue))
	}
	if rep.Refill.RetiredEarly == 0 {
		t.Fatal("staggered caps must retire at least one segment early")
	}
	if len(rep.Results) != len(items)+4 {
		t.Fatalf("results: %d, want %d", len(rep.Results), len(items)+4)
	}
	if len(hook.retired) != len(rep.Results) {
		t.Fatalf("hook deliveries %d != results %d", len(hook.retired), len(rep.Results))
	}
	solo := refillEngine(t, 10)
	for _, r := range rep.Results {
		want, err := solo.RunSingle(r.ID+1000, tokens[r.ID])
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(r.Output, want.Output) {
			t.Fatalf("request %d: refill %v vs solo %v", r.ID, r.Output, want.Output)
		}
	}
	if rep.Refill.OccupancyPct() <= 0 || rep.Refill.OccupancyPct() > 100 {
		t.Fatalf("occupancy %.1f%% out of range", rep.Refill.OccupancyPct())
	}
}

// The device reservation must follow the batch's composition — shrink on
// retire, grow on admit — and come back to zero after Release, even under a
// budget with no headroom beyond the staged batch.
func TestRefillMemoryAccounting(t *testing.T) {
	src := rng.New(72)
	tokens, items := makeRequests(src, 3, 6)
	b, rest := batch.PackConcat(items, 1, 9)
	if len(rest) != 0 {
		t.Fatal("pack failed")
	}
	e := refillEngine(t, 8)
	e.Mem = gpu.NewMemoryManager(int64(b.TotalTokens()) * e.BytesPerToken)

	hook := &scriptHook{}
	id := int64(200)
	tokens[id] = randTokens(src, 3)
	hook.queue = append(hook.queue, Admission{ID: id, Tokens: tokens[id]})

	p, err := e.Prepare(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.RunPreparedRefill(p, hook)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refill.Admitted != 1 {
		t.Fatalf("admission did not fit the freed reservation: %+v", rep.Refill)
	}
	p.Release()
	if e.Mem.Used() != 0 || e.Mem.Outstanding() != 0 {
		t.Fatalf("memory leaked: used=%d outstanding=%d", e.Mem.Used(), e.Mem.Outstanding())
	}
}

// Oversized and empty admissions must bounce back through Reject without
// derailing the launch.
func TestRefillRejectsUnseatableAdmissions(t *testing.T) {
	src := rng.New(73)
	tokens, items := makeRequests(src, 2, 6)
	b, rest := batch.PackConcat(items, 1, 8)
	if len(rest) != 0 {
		t.Fatal("pack failed")
	}
	e := refillEngine(t, 8)
	// A hook that ignores the offered capacity: the engine must reject
	// rather than overfill.
	bad := &defiantHook{admissions: []Admission{
		{ID: 300, Tokens: randTokens(src, 100)},
		{ID: 301, Tokens: nil},
	}}
	p, err := e.Prepare(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.RunPreparedRefill(p, bad)
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
	if rep.Refill.Admitted != 0 {
		t.Fatalf("admitted %d unseatable requests", rep.Refill.Admitted)
	}
	if len(bad.rejected) != 2 {
		t.Fatalf("rejected %d of 2 bad admissions", len(bad.rejected))
	}
	if len(rep.Results) != len(items) {
		t.Fatalf("results: %d, want %d", len(rep.Results), len(items))
	}
}

// defiantHook returns its scripted admissions on the first offer regardless
// of the capacity the engine announced.
type defiantHook struct {
	admissions []Admission
	rejected   []Admission
}

func (h *defiantHook) Retire(Result) {}

func (h *defiantHook) Refill(int) []Admission {
	out := h.admissions
	h.admissions = nil
	return out
}

func (h *defiantHook) Reject(adm Admission, err error) { h.rejected = append(h.rejected, adm) }

// The refill loop requires the fused cached decoder; misconfiguration is an
// error, and a nil hook degrades to the plain prepared path.
func TestRefillRequiresFusedCache(t *testing.T) {
	src := rng.New(74)
	tokens, items := makeRequests(src, 3)
	b, _ := batch.PackConcat(items, 1, 5)
	e := testEngine(t, 3) // UseCache false
	p, err := e.Prepare(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if _, err := e.RunPreparedRefill(p, &scriptHook{}); err == nil {
		t.Fatal("refill without UseCache must fail")
	}
	if _, err := e.RunPreparedRefill(p, nil); err != nil {
		t.Fatalf("nil hook must degrade to RunPrepared: %v", err)
	}
}
