// Package vocab implements the tiny word-level tokenizer the runnable
// examples use to turn sentences into token-id sequences for the TCB
// inference engine. It is intentionally simple — the paper's contribution is
// batching and scheduling, not tokenization — but it is a real, reversible
// tokenizer so examples can round-trip text.
package vocab

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Reserved token ids. User words start at FirstWordID.
const (
	PadID = iota // padding token; ignored by the engine's masks
	BosID        // beginning of sequence (decoder start)
	EosID        // end of sequence (decoder stop)
	UnkID        // unknown word
	FirstWordID
)

// Vocab maps words to integer ids and back.
type Vocab struct {
	wordToID map[string]int
	idToWord []string
}

// New returns a vocabulary containing only the reserved tokens.
func New() *Vocab {
	v := &Vocab{wordToID: make(map[string]int)}
	for _, w := range []string{"<pad>", "<bos>", "<eos>", "<unk>"} {
		v.idToWord = append(v.idToWord, w)
		v.wordToID[w] = len(v.idToWord) - 1
	}
	return v
}

// Build returns a vocabulary over every whitespace-separated lowercase word
// in corpus, added in sorted order so construction is deterministic.
func Build(corpus []string) *Vocab {
	v := New()
	seen := make(map[string]bool)
	var words []string
	for _, line := range corpus {
		for _, w := range tokenize(line) {
			if !seen[w] {
				seen[w] = true
				words = append(words, w)
			}
		}
	}
	sort.Strings(words)
	for _, w := range words {
		v.Add(w)
	}
	return v
}

func tokenize(s string) []string {
	return strings.Fields(strings.ToLower(s))
}

// Add inserts word (if new) and returns its id.
func (v *Vocab) Add(word string) int {
	if id, ok := v.wordToID[word]; ok {
		return id
	}
	v.idToWord = append(v.idToWord, word)
	id := len(v.idToWord) - 1
	v.wordToID[word] = id
	return id
}

// Size returns the number of tokens, reserved ids included.
func (v *Vocab) Size() int { return len(v.idToWord) }

// ID returns the id of word, or UnkID if unseen.
func (v *Vocab) ID(word string) int {
	if id, ok := v.wordToID[word]; ok {
		return id
	}
	return UnkID
}

// Word returns the surface form of id, or "<unk>" if out of range.
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.idToWord) {
		return v.idToWord[UnkID]
	}
	return v.idToWord[id]
}

// Encode tokenizes sentence and maps each word to an id.
func (v *Vocab) Encode(sentence string) []int {
	words := tokenize(sentence)
	ids := make([]int, len(words))
	for i, w := range words {
		ids[i] = v.ID(w)
	}
	return ids
}

// Decode maps ids back to words, skipping reserved control tokens, and
// joins them with spaces.
func (v *Vocab) Decode(ids []int) string {
	var words []string
	for _, id := range ids {
		if id == PadID || id == BosID || id == EosID {
			continue
		}
		words = append(words, v.Word(id))
	}
	return strings.Join(words, " ")
}

// vocabFile is the JSON representation: the id→word table (reserved ids
// included, so index == id).
type vocabFile struct {
	Words []string `json:"words"`
}

// Save writes the vocabulary as JSON. Serving text requires shipping the
// vocabulary with the model checkpoint; this is its other half.
func (v *Vocab) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(vocabFile{Words: v.idToWord})
}

// Load reads a vocabulary written by Save and validates the reserved ids.
func Load(r io.Reader) (*Vocab, error) {
	var vf vocabFile
	if err := json.NewDecoder(r).Decode(&vf); err != nil {
		return nil, fmt.Errorf("vocab: decode: %w", err)
	}
	if len(vf.Words) < FirstWordID {
		return nil, fmt.Errorf("vocab: %d words, need at least the %d reserved", len(vf.Words), FirstWordID)
	}
	for id, want := range []string{"<pad>", "<bos>", "<eos>", "<unk>"} {
		if vf.Words[id] != want {
			return nil, fmt.Errorf("vocab: reserved id %d is %q, want %q", id, vf.Words[id], want)
		}
	}
	v := &Vocab{wordToID: make(map[string]int, len(vf.Words)), idToWord: vf.Words}
	for id, w := range vf.Words {
		if prev, dup := v.wordToID[w]; dup {
			return nil, fmt.Errorf("vocab: word %q at both ids %d and %d", w, prev, id)
		}
		v.wordToID[w] = id
	}
	return v, nil
}
