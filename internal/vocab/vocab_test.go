package vocab

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReservedTokens(t *testing.T) {
	v := New()
	if v.Size() != FirstWordID {
		t.Fatalf("Size = %d, want %d", v.Size(), FirstWordID)
	}
	if v.Word(PadID) != "<pad>" || v.Word(EosID) != "<eos>" {
		t.Fatal("reserved token surface forms wrong")
	}
}

func TestAddAndID(t *testing.T) {
	v := New()
	id := v.Add("hello")
	if id != FirstWordID {
		t.Fatalf("first word id = %d, want %d", id, FirstWordID)
	}
	if v.Add("hello") != id {
		t.Fatal("Add of existing word should return same id")
	}
	if v.ID("hello") != id {
		t.Fatal("ID lookup mismatch")
	}
	if v.ID("missing") != UnkID {
		t.Fatal("unknown word should map to UnkID")
	}
}

func TestBuildDeterministic(t *testing.T) {
	corpus := []string{"the quick brown fox", "jumps over the lazy dog"}
	v1 := Build(corpus)
	v2 := Build([]string{"jumps over the lazy dog", "the quick brown fox"})
	// Sorted insertion makes ids independent of corpus line order.
	for _, w := range []string{"the", "quick", "dog", "jumps"} {
		if v1.ID(w) != v2.ID(w) {
			t.Fatalf("id of %q differs across corpus orders", w)
		}
	}
	if v1.Size() != FirstWordID+8 {
		t.Fatalf("Size = %d, want %d", v1.Size(), FirstWordID+8)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := Build([]string{"hello world again"})
	ids := v.Encode("hello world")
	if len(ids) != 2 {
		t.Fatalf("Encode length = %d, want 2", len(ids))
	}
	if got := v.Decode(ids); got != "hello world" {
		t.Fatalf("Decode = %q, want %q", got, "hello world")
	}
}

func TestEncodeLowercases(t *testing.T) {
	v := Build([]string{"hello"})
	if v.Encode("HELLO")[0] != v.ID("hello") {
		t.Fatal("Encode should lowercase input")
	}
}

func TestDecodeSkipsControlTokens(t *testing.T) {
	v := Build([]string{"word"})
	got := v.Decode([]int{BosID, v.ID("word"), EosID, PadID})
	if got != "word" {
		t.Fatalf("Decode = %q, want %q", got, "word")
	}
}

func TestDecodeOutOfRange(t *testing.T) {
	v := New()
	if got := v.Decode([]int{999, -1}); got != "<unk> <unk>" {
		t.Fatalf("Decode = %q", got)
	}
}

func TestUnknownWordsEncodeToUnk(t *testing.T) {
	v := Build([]string{"known"})
	ids := v.Encode("known mystery")
	if ids[1] != UnkID {
		t.Fatalf("unknown word id = %d, want %d", ids[1], UnkID)
	}
}

// Property: Word(ID(w)) == w for every word added to the vocab.
func TestWordIDInverse(t *testing.T) {
	v := New()
	f := func(raw []uint8) bool {
		// Build a word from a restricted alphabet so it survives tokenize.
		if len(raw) == 0 {
			return true
		}
		word := ""
		for _, b := range raw {
			word += string(rune('a' + b%26))
		}
		id := v.Add(word)
		return v.Word(id) == word && v.ID(word) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVocabSaveLoadRoundTrip(t *testing.T) {
	v := Build([]string{"the quick brown fox"})
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != v.Size() {
		t.Fatalf("size %d != %d", loaded.Size(), v.Size())
	}
	for _, w := range []string{"the", "quick", "brown", "fox"} {
		if loaded.ID(w) != v.ID(w) {
			t.Fatalf("id of %q changed across round trip", w)
		}
	}
	if loaded.Decode(loaded.Encode("quick fox")) != "quick fox" {
		t.Fatal("round-tripped vocab cannot decode")
	}
}

func TestVocabLoadRejectsCorrupt(t *testing.T) {
	cases := []string{
		"not json",
		`{"words":[]}`,
		`{"words":["<pad>","<bos>","<eos>","wrong"]}`,
		`{"words":["<pad>","<bos>","<eos>","<unk>","dup","dup"]}`,
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}
